//! The Lightweight Parallel Clique Percolation Method.
//!
//! Gregori, Lenzini, Mainardi and Orsini's companion algorithm made CPM
//! feasible on the 2010 AS topology (93 h on 48 cores). Its insight — the
//! expensive phases are clique enumeration and clique-overlap counting,
//! both embarrassingly parallel, while the percolation itself is cheap —
//! is reproduced here on the persistent [`exec::Pool`]:
//!
//! 1. maximal cliques: the degeneracy outer loop under an atomic-counter
//!    work-stealing deal (delegated to [`cliques::parallel`]);
//! 2. overlap counting: clique ids claimed in chunks of [`OVERLAP_CHUNK`]
//!    from a shared [`ChunkQueue`], each worker counting with the
//!    [`OverlapScratch`] resident in its pool arena (stamp arrays and
//!    counters stay warm across calls); per-chunk strata are reassembled
//!    in chunk order, so the result is *identical* to the sequential
//!    construction — independent of thread count and scheduling races;
//! 3. the descending-k sweep: one `pool.run` for the whole drain — each
//!    stratum is claimed in chunks of [`UNION_CHUNK`] over a lock-free
//!    [`ConcurrentDsu`], and the job's reusable barrier separates the
//!    strata, with worker 0 snapshotting each level in between
//!    ([`percolate_from_strata_parallel`]). The workers stay resident
//!    from the first stratum to the last instead of being respawned
//!    `k_max` times.
//!
//! Thread counts are [`Threads`] everywhere (plain integers coerce):
//! `Threads::Auto` sizes each phase from its own work estimate and
//! falls back to the sequential path below the grain, so tiny inputs
//! never pay pool overhead.
//!
//! Output is bit-identical to the sequential [`crate::percolate`]; the
//! tests assert it and the bench suite measures the speedup.

use crate::dsu_concurrent::ConcurrentDsu;
use crate::mode::{emit_keys, KeyTable, Mode, SubsumptionStrata, KEY_MAX_L};
use crate::overlap::{build_vertex_index, overlap_uses_bitset, OverlapScratch, VertexCliqueIndex};
use crate::percolation::LevelSnapshotter;
use crate::result::{CpmResult, KLevel};
use crate::sweep::{chain_union_postings, percolate_from_strata, OverlapStrata};
use asgraph::Graph;
use cliques::{CliqueSet, Kernel};
use exec::{CancelToken, Cancelled, ChunkQueue, OrderedAbsorber, Pool, Threads};
use std::sync::{Mutex, RwLock};

/// Per-chunk (key, owner-clique) maps produced by the key phase,
/// tagged with their chunk index so the leader can merge them in
/// sequential order.
type ChunkKeyMaps = Vec<(usize, Vec<(u64, u32)>)>;

/// Clique ids claimed per queue chunk during parallel overlap counting.
/// Overlap counting per clique is much cheaper than a Bron–Kerbosch
/// subproblem, so chunks are coarser than the enumerator's to keep the
/// shared counter cold.
pub const OVERLAP_CHUNK: usize = 256;

/// Out-of-order overlap chunks buffered before a too-far-ahead worker
/// pauses ([`OrderedAbsorber`] window). Small: the buffer bounds the
/// phase's extra peak heap to a few chunks of pairs instead of a whole
/// second copy of the strata.
const OVERLAP_ABSORB_WINDOW: usize = 8;

/// Stratum pairs claimed per queue chunk while draining one overlap
/// stratum into the concurrent union–find. A union is a handful of
/// atomic ops, so chunks are coarse to keep the shared counter out of
/// the way.
pub const UNION_CHUNK: usize = 2048;

/// Below this many pairs a stratum is drained by worker 0 alone:
/// coordinating the team costs more than the unions.
pub(crate) const PAR_UNION_MIN: usize = 4 * UNION_CHUNK;

/// The `Threads::Auto` grain for overlap counting: total clique
/// memberships (the posting count, which bounds the counting work) per
/// worker before adding that worker pays.
const AUTO_MEMBERS_PER_WORKER: usize = 8_192;

/// The `Threads::Auto` work-volume grain for the *end-to-end*
/// almost-mode percolate entry points: graph edges per worker before
/// the whole pipeline's fan-out amortises. Individual phases have
/// their own (smaller) grains, but the committed `BENCH_pool.json`
/// shows every sub-crossover substrate (sparse300 at ~2.3k edges,
/// dense60, tiny-internet) losing to the sequential path at *every*
/// fixed multi-worker count — so below `2 × grain` edges, `auto`
/// snaps the entire run to one worker instead of letting a single
/// phase fan out.
pub const ALMOST_AUTO_EDGES_PER_WORKER: usize = 8_192;

/// Applies [`ALMOST_AUTO_EDGES_PER_WORKER`] at an almost-mode
/// percolate entry point: `Threads::Auto` below the crossover becomes
/// an explicit one-worker run (fixed counts pass through untouched;
/// above the crossover `auto` keeps its per-phase sizing).
pub(crate) fn almost_auto_threads(threads: Threads, g: &Graph) -> Threads {
    if threads.is_auto() && threads.resolve(g.edge_count(), ALMOST_AUTO_EDGES_PER_WORKER) == 1 {
        Threads::Fixed(1)
    } else {
        threads
    }
}

/// Runs the full CPM pipeline with `threads` workers (`usize` or
/// [`Threads`]; `Threads::Auto` scales every phase with its work) and
/// the default [`Kernel::Auto`] set kernel.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
///
/// let g = Graph::complete(6);
/// let seq = cpm::percolate(&g);
/// let par = cpm::parallel::percolate_parallel(&g, 4);
/// assert_eq!(seq.total_communities(), par.total_communities());
/// ```
pub fn percolate_parallel(g: &Graph, threads: impl Into<Threads>) -> CpmResult {
    percolate_parallel_with_kernel(g, threads, Kernel::Auto)
}

/// [`percolate_parallel`] with an explicit set [`Kernel`] for both the
/// clique enumeration and the overlap counting phases. The result is
/// identical whatever the kernel or thread count.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn percolate_parallel_with_kernel(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
) -> CpmResult {
    let threads = threads.into();
    let mut cliques = cliques::parallel::max_cliques_parallel_with(g, threads, kernel);
    // Same canonicalisation entry point as the sequential path: the
    // result is then identical whatever the thread count.
    cliques.canonicalize();
    let index = build_vertex_index(&cliques, g.node_count());
    // min_overlap = 2: the o = 1 stratum is never stored — the k = 2
    // level is chained straight off the posting lists.
    let strata = overlap_strata_parallel_min(&cliques, &index, threads, kernel, 2);
    percolate_from_strata_parallel(cliques, strata, threads, &index)
}

/// [`percolate_parallel_with_kernel`] with a [`CancelToken`] polled at
/// every phase's chunk boundaries — enumeration claims, overlap claims,
/// and stratum-drain claims. Cancellation never skips a barrier:
/// workers that stop claiming still run out through the job protocol,
/// so the pool is immediately reusable, and partial pipeline state is
/// simply dropped.
///
/// Until the token trips this is bit-identical to
/// [`percolate_parallel_with_kernel`] at every worker count.
///
/// # Errors
///
/// Returns [`Cancelled`] once the token trips.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn percolate_parallel_cancellable(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
    cancel: &CancelToken,
) -> Result<CpmResult, Cancelled> {
    let threads = threads.into();
    let mut cliques =
        cliques::parallel::max_cliques_parallel_cancellable(g, threads, kernel, cancel)?;
    cliques.canonicalize();
    let index = build_vertex_index(&cliques, g.node_count());
    let strata = overlap_strata_parallel_impl(&cliques, &index, threads, kernel, 2, Some(cancel))?;
    percolate_from_strata_parallel_impl(cliques, strata, threads, &index, Some(cancel))
}

/// Computes the overlap stratification with `threads` workers and the
/// default [`Kernel::Auto`].
///
/// Identical — stratum for stratum, pair for pair, in order — to the
/// sequential [`crate::overlap_strata`]: workers emit into per-chunk
/// mini-strata which are concatenated in ascending chunk order.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn overlap_strata_parallel(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: impl Into<Threads>,
) -> OverlapStrata {
    overlap_strata_parallel_with(cliques, index, threads, Kernel::Auto)
}

/// [`overlap_strata_parallel`] with an explicit counting [`Kernel`].
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn overlap_strata_parallel_with(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: impl Into<Threads>,
    kernel: Kernel,
) -> OverlapStrata {
    overlap_strata_parallel_min(cliques, index, threads, kernel, 1)
}

/// [`overlap_strata_parallel_with`] restricted to pairs with overlap ≥
/// `min_overlap` (see [`crate::overlap_strata_min`] for why the fused
/// pipeline passes 2).
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn overlap_strata_parallel_min(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: impl Into<Threads>,
    kernel: Kernel,
    min_overlap: u32,
) -> OverlapStrata {
    overlap_strata_parallel_impl(cliques, index, threads.into(), kernel, min_overlap, None)
        .expect("uncancellable overlap counting cannot be cancelled")
}

fn overlap_strata_parallel_impl(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: Threads,
    kernel: Kernel,
    min_overlap: u32,
    cancel: Option<&CancelToken>,
) -> Result<OverlapStrata, Cancelled> {
    let n = cliques.len();
    let mut workers = threads.resolve(cliques.total_members(), AUTO_MEMBERS_PER_WORKER);
    if n < 2 * workers {
        workers = 1;
    }
    let max_size = cliques.max_size();
    let use_bitset = overlap_uses_bitset(kernel, cliques);
    let pool = Pool::global();

    if workers == 1 {
        // Sequential, but with the worker-0 arena's warm scratch.
        return pool.leader(|mut w| {
            let scratch = w.scratch_with(OverlapScratch::default);
            scratch.reset_for(cliques, use_bitset);
            let mut strata = OverlapStrata::new(max_size);
            for i in 0..n {
                // Same cancellation granularity as the parallel path.
                if i % OVERLAP_CHUNK == 0 {
                    if let Some(token) = cancel {
                        token.check()?;
                    }
                }
                scratch.count_overlaps_of(cliques, index, i as u32, |a, b, o| {
                    strata.push(a, b, o);
                });
                // Unconditional emit + per-clique discard: see
                // `clear_below`.
                strata.clear_below(min_overlap);
            }
            Ok(strata)
        });
    }

    // Streaming chunk-ordered reassembly: each finished chunk folds
    // into the shared strata the moment it is next due, so the peak
    // heap is one copy of the pairs plus at most [`OVERLAP_ABSORB_WINDOW`]
    // buffered chunks — not a second copy of every stratum held until a
    // post-job sort (which used to double the phase's peak at 2+
    // workers).
    let queue = ChunkQueue::new(n, OVERLAP_CHUNK);
    let absorber = OrderedAbsorber::new(OVERLAP_ABSORB_WINDOW, OverlapStrata::new(max_size));
    pool.run(workers, |mut w| {
        let scratch = w.scratch_with(OverlapScratch::default);
        scratch.reset_for(cliques, use_bitset);
        let claim = || match cancel {
            Some(token) => queue.claim_unless(token),
            None => queue.claim(),
        };
        while let Some(range) = claim() {
            let start = range.start;
            let mut strata = OverlapStrata::new(max_size);
            for i in range {
                scratch.count_overlaps_of(cliques, index, i as u32, |a, b, o| {
                    strata.push(a, b, o);
                });
                strata.clear_below(min_overlap);
            }
            absorber.submit(start / OVERLAP_CHUNK, strata, |acc, mut chunk| {
                acc.absorb(&mut chunk);
            });
        }
    });
    if let Some(token) = cancel {
        token.check()?;
    }
    Ok(absorber.into_inner())
}

/// The parallel fused sweep: one resident pool job drains every
/// stratum in descending k over a lock-free [`ConcurrentDsu`], with the
/// job's reusable barrier between strata.
///
/// The barrier is what preserves Theorem 1: each level's communities and
/// the previous level's parent links are snapshotted (by worker 0, while
/// the other workers hold at the barrier) from quiescent union–find
/// state, after stratum `k−1` has fully drained and before stratum `k−2`
/// starts. Within a stratum, union order is free — union–find is
/// confluent, and union-by-index makes even the *roots* deterministic
/// (the minimum clique id of each component), so the result is
/// bit-identical to the sequential [`crate::percolate_from_strata`] at
/// every thread count. Strata smaller than the parallel threshold are
/// drained by worker 0 alone; each stratum's memory is released right
/// after its snapshot, preserving the descending-peak property of the
/// sequential sweep.
///
/// As in the sequential sweep, `index` must be the unfiltered inverted
/// index of `cliques`: it supplies the k = 2 level (posting-list
/// chaining) and stratum 1 is ignored.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn percolate_from_strata_parallel(
    cliques: CliqueSet,
    strata: OverlapStrata,
    threads: impl Into<Threads>,
    index: &VertexCliqueIndex,
) -> CpmResult {
    percolate_from_strata_parallel_impl(cliques, strata, threads.into(), index, None)
        .expect("uncancellable sweep cannot be cancelled")
}

fn percolate_from_strata_parallel_impl(
    cliques: CliqueSet,
    mut strata: OverlapStrata,
    threads: Threads,
    index: &VertexCliqueIndex,
    cancel: Option<&CancelToken>,
) -> Result<CpmResult, Cancelled> {
    let k_max = cliques.max_size();
    if k_max < 2 {
        return Ok(CpmResult {
            cliques,
            levels: Vec::new(),
        });
    }
    // Parallelism only pays where a single stratum clears the union
    // threshold: resolve the worker count from the largest one.
    let largest = (2..k_max.max(2))
        .map(|o| strata.stratum(o).len())
        .max()
        .unwrap_or(0);
    let workers = threads.resolve(largest, PAR_UNION_MIN);
    if workers == 1 && cancel.is_none() {
        return Ok(percolate_from_strata(cliques, strata, index));
    }

    let dsu = ConcurrentDsu::new(cliques.len());
    // Strata in drain order (descending k ⇒ descending overlap), moved
    // behind RwLocks: workers share them read-locked while draining,
    // worker 0 write-locks to free each one after its snapshot.
    let strata_desc: Vec<RwLock<Vec<(u32, u32)>>> = (3..=k_max)
        .rev()
        .map(|k| RwLock::new(strata.take(k - 1)))
        .collect();
    let queues: Vec<ChunkQueue> = strata_desc
        .iter()
        .map(|lock| {
            let len = lock.read().map(|p| p.len()).unwrap_or(0);
            // Sub-threshold strata get an empty queue: the team skips
            // them and worker 0 drains inline.
            ChunkQueue::new(if len >= PAR_UNION_MIN { len } else { 0 }, UNION_CHUNK)
        })
        .collect();
    let seq_parts = Mutex::new((
        LevelSnapshotter::new(cliques.len()),
        Vec::<KLevel>::with_capacity(k_max - 1),
    ));
    let cliques_ref = &cliques;
    let dsu_ref = &dsu;

    Pool::global().run(workers, |w| {
        for (si, lock) in strata_desc.iter().enumerate() {
            let k = k_max - si;
            // Cancellation must preserve the barrier flow: a worker
            // that stops claiming still reaches both barriers of every
            // stratum, so its peers and the leader never deadlock —
            // the whole team just drains through empty iterations.
            let cancelled = cancel.is_some_and(|token| token.is_cancelled());
            {
                let pairs = lock.read().expect("sweep worker panicked");
                if queues[si].is_empty() {
                    if w.is_leader() && !cancelled {
                        for chunk in pairs.chunks(UNION_CHUNK) {
                            if cancel.is_some_and(|token| token.is_cancelled()) {
                                break;
                            }
                            for &(a, b) in chunk {
                                dsu_ref.union(a, b);
                            }
                        }
                    }
                } else {
                    let claim = || match cancel {
                        Some(token) => queues[si].claim_unless(token),
                        None => queues[si].claim(),
                    };
                    while let Some(range) = claim() {
                        for &(a, b) in &pairs[range] {
                            dsu_ref.union(a, b);
                        }
                    }
                }
            }
            // Quiesce: every union of stratum k−1 happens-before the
            // snapshot below.
            w.barrier();
            if w.is_leader() {
                drop(std::mem::take(
                    &mut *lock.write().expect("sweep worker panicked"),
                ));
                // A cancelled run's levels are discarded with the Err,
                // so the leader skips the snapshot work too.
                if !cancel.is_some_and(|token| token.is_cancelled()) {
                    let (snap, levels) = &mut *seq_parts.lock().expect("sweep worker panicked");
                    let level =
                        snap.snapshot(cliques_ref, k, &mut |x| dsu_ref.find(x), levels.last_mut());
                    levels.push(level);
                }
            }
            // And hold stratum k−2 until the snapshot is taken.
            w.barrier();
        }
    });
    if let Some(token) = cancel {
        token.check()?;
    }

    let (mut snap, mut levels_desc) = seq_parts.into_inner().expect("sweep worker panicked");
    // k = 2 off the posting lists, as in the sequential sweep. The
    // chain is Σ |postings| unions — far below the parallel threshold
    // in practice — so it runs inline on the calling thread.
    drop(strata.take(1));
    chain_union_postings(index, &mut |a, b| {
        dsu.union(a, b);
    });
    let level = snap.snapshot(&cliques, 2, &mut |x| dsu.find(x), levels_desc.last_mut());
    levels_desc.push(level);
    levels_desc.reverse();
    Ok(CpmResult {
        cliques,
        levels: levels_desc,
    })
}

/// Clique ids claimed per queue chunk during the parallel key phase of
/// the almost-mode sweep. Key emission per clique is a handful of
/// hashes, so chunks match the overlap phase's coarseness.
pub const KEY_CHUNK: usize = OVERLAP_CHUNK;

/// [`percolate_parallel`] in an explicit [`Mode`]: `Exact` is the
/// overlap-counting pipeline above, `Almost` swaps the pairwise phase
/// for the (k−1)-clique-key engine (see [`crate::mode`]) on the same
/// [`exec::Pool`].
///
/// The almost path is thread-count invariant the same way the exact
/// one is: per-chunk key maps are merged in ascending chunk order, the
/// union–find is confluent and union-by-index, and every level is
/// snapshotted from quiescent state behind the job barrier — so the
/// output equals the sequential [`crate::percolate_mode`] at every
/// worker count.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cpm::Mode;
///
/// let g = Graph::complete(6);
/// let seq = cpm::percolate_mode(&g, Mode::Almost);
/// let par = cpm::parallel::percolate_parallel_mode(&g, 4, Mode::Almost);
/// assert_eq!(seq.levels, par.levels);
/// ```
pub fn percolate_parallel_mode(g: &Graph, threads: impl Into<Threads>, mode: Mode) -> CpmResult {
    let threads = threads.into();
    match mode {
        Mode::Exact => percolate_parallel(g, threads),
        Mode::Almost => {
            let threads = almost_auto_threads(threads, g);
            let mut cliques =
                cliques::parallel::max_cliques_parallel_with(g, threads, Kernel::Auto);
            cliques.canonicalize();
            let strata = SubsumptionStrata::build(&cliques);
            almost_sweep_parallel_impl(cliques, strata, threads, None)
                .expect("uncancellable sweep cannot be cancelled")
        }
    }
}

/// [`percolate_parallel_cancellable`] in an explicit [`Mode`]. The
/// almost path polls the token at enumeration claims, key-phase claims,
/// and stratum-drain claims; the sequential subsumption prepass checks
/// it at entry and exit.
///
/// # Errors
///
/// Returns [`Cancelled`] once the token trips.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn percolate_parallel_cancellable_mode(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
    cancel: &CancelToken,
    mode: Mode,
) -> Result<CpmResult, Cancelled> {
    let threads = threads.into();
    match mode {
        Mode::Exact => percolate_parallel_cancellable(g, threads, kernel, cancel),
        Mode::Almost => {
            let threads = almost_auto_threads(threads, g);
            let mut cliques =
                cliques::parallel::max_cliques_parallel_cancellable(g, threads, kernel, cancel)?;
            cliques.canonicalize();
            cancel.check()?;
            let strata = SubsumptionStrata::build(&cliques);
            cancel.check()?;
            almost_sweep_parallel_impl(cliques, strata, threads, Some(cancel))
        }
    }
}

/// The parallel almost-mode sweep: one resident pool job runs the
/// descending-k levels over a lock-free [`ConcurrentDsu`].
///
/// Per level, two sources feed the union–find:
///
/// * **Per-chunk key maps** (levels with `k − 1 ≤` [`KEY_MAX_L`]):
///   workers claim clique chunks of [`KEY_CHUNK`] and hash each
///   clique's admitted (k−1)-subsets into the arena-resident
///   [`KeyTable`] (epoch-cleared per chunk). Repeats *within* a chunk
///   union immediately; each chunk's first-seen `(key, owner)` pairs
///   are collected and merged by the leader in ascending chunk order
///   into a global table — so cross-chunk sharing unions exactly the
///   pairs the sequential first-seen semantics would, while the other
///   workers proceed straight into the stratum drain (union–find is
///   confluent, so the interleave is free).
/// * **The subsumption stratum** of the level, claimed in chunks of
///   [`UNION_CHUNK`]; sub-threshold strata are drained by the leader
///   inline, as in the exact sweep.
///
/// The job's reusable barrier then quiesces the level for the leader's
/// snapshot, exactly like [`percolate_from_strata_parallel`].
fn almost_sweep_parallel_impl(
    cliques: CliqueSet,
    strata: SubsumptionStrata,
    threads: Threads,
    cancel: Option<&CancelToken>,
) -> Result<CpmResult, Cancelled> {
    let k_max = cliques.max_size();
    if k_max < 2 {
        return Ok(CpmResult {
            cliques,
            levels: Vec::new(),
        });
    }
    let largest = (2..=k_max).map(|k| strata.at(k).len()).max().unwrap_or(0);
    let workers = threads.resolve(largest.max(cliques.len()), PAR_UNION_MIN);
    if workers == 1 && cancel.is_none() {
        return Ok(crate::mode::almost_percolate_with_strata(cliques, strata));
    }

    let dsu = ConcurrentDsu::new(cliques.len());
    let ks: Vec<usize> = (2..=k_max).rev().collect();
    let strata_queues: Vec<ChunkQueue> = ks
        .iter()
        .map(|&k| {
            let len = strata.at(k).len();
            // Sub-threshold strata get an empty queue: the team skips
            // them and the leader drains inline.
            ChunkQueue::new(if len >= PAR_UNION_MIN { len } else { 0 }, UNION_CHUNK)
        })
        .collect();
    let key_queues: Vec<ChunkQueue> = ks
        .iter()
        .map(|&k| {
            // Levels above the keyed band have no key phase at all —
            // their queue is empty and every worker skips the branch.
            ChunkQueue::new(
                if k - 1 <= KEY_MAX_L { cliques.len() } else { 0 },
                KEY_CHUNK,
            )
        })
        .collect();
    let chunk_maps: Mutex<ChunkKeyMaps> = Mutex::new(Vec::new());
    let seq_parts = Mutex::new((
        KeyTable::new(),
        LevelSnapshotter::new(cliques.len()),
        Vec::<KLevel>::with_capacity(k_max - 1),
    ));
    let cliques_ref = &cliques;
    let strata_ref = &strata;
    let dsu_ref = &dsu;

    Pool::global().run(workers, |mut w| {
        for (si, &k) in ks.iter().enumerate() {
            let cancelled = || cancel.is_some_and(|token| token.is_cancelled());
            if !key_queues[si].is_empty() {
                {
                    let table = w.scratch_with(KeyTable::new);
                    let mut local: Vec<(usize, Vec<(u64, u32)>)> = Vec::new();
                    let claim = || match cancel {
                        Some(token) => key_queues[si].claim_unless(token),
                        None => key_queues[si].claim(),
                    };
                    while let Some(range) = claim() {
                        let start = range.start;
                        table.begin_level();
                        let mut firsts: Vec<(u64, u32)> = Vec::new();
                        for i in range {
                            if cliques_ref.size(i) < k {
                                continue;
                            }
                            emit_keys(cliques_ref.get(i), k - 1, &mut |key| match table
                                .first_seen(key, i as u32)
                            {
                                None => firsts.push((key, i as u32)),
                                Some(owner) if owner != i as u32 => {
                                    dsu_ref.union(owner, i as u32);
                                }
                                Some(_) => {}
                            });
                        }
                        local.push((start, firsts));
                    }
                    chunk_maps
                        .lock()
                        .expect("almost sweep worker panicked")
                        .extend(local);
                }
                // Every chunk map must be in before the leader merges;
                // the non-leaders fall through to the stratum drain.
                w.barrier();
                if w.is_leader() {
                    let mut maps = std::mem::take(
                        &mut *chunk_maps.lock().expect("almost sweep worker panicked"),
                    );
                    if !cancelled() {
                        maps.sort_unstable_by_key(|&(start, _)| start);
                        let (table, _, _) =
                            &mut *seq_parts.lock().expect("almost sweep worker panicked");
                        table.begin_level();
                        for (_, firsts) in maps {
                            for (key, owner) in firsts {
                                if let Some(prev) = table.first_seen(key, owner) {
                                    if prev != owner {
                                        dsu_ref.union(prev, owner);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            {
                let pairs = strata_ref.at(k);
                if strata_queues[si].is_empty() {
                    if w.is_leader() && !cancelled() {
                        for chunk in pairs.chunks(UNION_CHUNK) {
                            if cancelled() {
                                break;
                            }
                            for &(a, b) in chunk {
                                dsu_ref.union(a, b);
                            }
                        }
                    }
                } else {
                    let claim = || match cancel {
                        Some(token) => strata_queues[si].claim_unless(token),
                        None => strata_queues[si].claim(),
                    };
                    while let Some(range) = claim() {
                        for &(a, b) in &pairs[range] {
                            dsu_ref.union(a, b);
                        }
                    }
                }
            }
            // Quiesce: every union of level k happens-before the
            // snapshot below.
            w.barrier();
            if w.is_leader() && !cancelled() {
                let (_, snap, levels) =
                    &mut *seq_parts.lock().expect("almost sweep worker panicked");
                let level =
                    snap.snapshot(cliques_ref, k, &mut |x| dsu_ref.find(x), levels.last_mut());
                levels.push(level);
            }
            // And hold level k−1 until the snapshot is taken.
            w.barrier();
        }
    });
    if let Some(token) = cancel {
        token.check()?;
    }

    let (_, _, mut levels_desc) = seq_parts
        .into_inner()
        .expect("almost sweep worker panicked");
    levels_desc.reverse();
    Ok(CpmResult {
        cliques,
        levels: levels_desc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percolate;
    use crate::sweep::overlap_strata_with;

    fn random_graph(n: u32, p: f64, seed: u64) -> Graph {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(p) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_percolation_matches_sequential() {
        let g = random_graph(60, 0.15, 9);
        let seq = percolate(&g);
        let par = percolate_parallel(&g, 4);
        assert_eq!(seq.levels.len(), par.levels.len());
        for (ls, lp) in seq.levels.iter().zip(par.levels.iter()) {
            assert_eq!(ls.k, lp.k);
            let mut ms: Vec<_> = ls.communities.iter().map(|c| c.members.clone()).collect();
            let mut mp: Vec<_> = lp.communities.iter().map(|c| c.members.clone()).collect();
            ms.sort();
            mp.sort();
            assert_eq!(ms, mp, "level {}", ls.k);
        }
    }

    #[test]
    fn parallel_strata_match_sequential_exactly() {
        let g = random_graph(50, 0.2, 3);
        let cliques = cliques::max_cliques(&g);
        let index = build_vertex_index(&cliques, g.node_count());
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let seq = overlap_strata_with(&cliques, &index, kernel);
            for threads in 1..=4 {
                let par = overlap_strata_parallel_with(&cliques, &index, threads, kernel);
                // Chunk-ordered reassembly: same strata, same order.
                assert_eq!(seq, par, "kernel {kernel}, threads {threads}");
            }
        }
        assert_eq!(
            crate::overlap_strata(&cliques, &index),
            overlap_strata_parallel(&cliques, &index, 4)
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_across_thread_counts() {
        let g = random_graph(60, 0.15, 9);
        let reference = percolate(&g);
        for threads in [1usize, 2, 3, 7] {
            let par = percolate_parallel(&g, threads);
            assert_eq!(reference.cliques, par.cliques, "threads {threads}");
            assert_eq!(reference.levels, par.levels, "threads {threads}");
        }
        let auto = percolate_parallel(&g, Threads::Auto);
        assert_eq!(reference.levels, auto.levels, "threads auto");
    }

    #[test]
    fn strata_sweep_crosses_the_parallel_union_threshold() {
        // Force the multi-threaded stratum drain (pairs >= PAR_UNION_MIN),
        // not just the small-stratum worker-0 fallback: a chain of
        // 3-cliques {i, i+1, i+2} puts every consecutive pair in stratum
        // 2 (the smallest stratum the sweep drains from pairs — o = 1
        // comes off the posting lists), and the chain is long enough to
        // clear the threshold.
        let n = 2 * PAR_UNION_MIN as u32;
        let mut cliques = CliqueSet::new();
        for i in 0..n {
            cliques.push(&[i, i + 1, i + 2]);
        }
        let index = build_vertex_index(&cliques, n as usize + 2);
        let strata = crate::overlap_strata(&cliques, &index);
        assert!(strata.stratum(2).len() >= PAR_UNION_MIN);
        let seq = percolate_from_strata(cliques.clone(), strata.clone(), &index);
        let par = percolate_from_strata_parallel(cliques, strata, 4, &index);
        assert_eq!(seq.levels, par.levels);
        for level in &par.levels {
            assert_eq!(level.communities.len(), 1, "chain fully merges at every k");
        }
    }

    #[test]
    fn auto_sweep_crosses_the_threshold_when_work_allows() {
        // Same substrate as above through the Auto heuristic: resolves
        // to >= 1 worker everywhere and still bit-identical.
        let n = 2 * PAR_UNION_MIN as u32;
        let mut cliques = CliqueSet::new();
        for i in 0..n {
            cliques.push(&[i, i + 1, i + 2]);
        }
        let index = build_vertex_index(&cliques, n as usize + 2);
        let strata = crate::overlap_strata(&cliques, &index);
        let seq = percolate_from_strata(cliques.clone(), strata.clone(), &index);
        let auto = percolate_from_strata_parallel(cliques, strata, Threads::Auto, &index);
        assert_eq!(seq.levels, auto.levels);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let g = Graph::complete(3);
        let _ = percolate_parallel(&g, 0);
    }

    #[test]
    fn cancellable_with_live_token_matches_plain() {
        let g = random_graph(60, 0.15, 9);
        let reference = percolate(&g);
        let token = exec::CancelToken::new();
        for threads in [1usize, 2, 4] {
            let got = percolate_parallel_cancellable(&g, threads, Kernel::Auto, &token)
                .expect("token never trips");
            assert_eq!(reference.levels, got.levels, "threads {threads}");
        }
    }

    #[test]
    fn tripped_token_cancels_and_leaves_the_pool_reusable() {
        let g = random_graph(60, 0.15, 9);
        let token = exec::CancelToken::new();
        token.cancel();
        for threads in [1usize, 2, 4] {
            let err = percolate_parallel_cancellable(&g, threads, Kernel::Auto, &token);
            assert!(err.is_err(), "threads {threads}");
        }
        // The cancelled runs ran out through the barrier protocol: the
        // very next plain run on the same pool is correct.
        let seq = percolate(&g);
        let par = percolate_parallel(&g, 4);
        assert_eq!(seq.levels, par.levels);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let r = percolate_parallel(&g, 2);
        assert_eq!(r.total_communities(), 0);
    }

    #[test]
    fn parallel_almost_is_bit_identical_across_thread_counts() {
        let g = random_graph(60, 0.15, 9);
        let reference = crate::percolate_mode(&g, Mode::Almost);
        for threads in [1usize, 2, 3, 7] {
            let par = percolate_parallel_mode(&g, threads, Mode::Almost);
            assert_eq!(reference.cliques, par.cliques, "threads {threads}");
            assert_eq!(reference.levels, par.levels, "threads {threads}");
        }
        let auto = percolate_parallel_mode(&g, Threads::Auto, Mode::Almost);
        assert_eq!(reference.levels, auto.levels, "threads auto");
    }

    #[test]
    fn auto_never_fans_out_below_the_percolate_crossover() {
        // Sub-crossover substrate (sparse300-sized): auto must snap to
        // one worker at the entry point, while fixed counts are always
        // honoured and a super-crossover graph keeps auto's per-phase
        // sizing.
        let small = random_graph(300, 0.05, 7);
        assert!(small.edge_count() < 2 * ALMOST_AUTO_EDGES_PER_WORKER);
        assert_eq!(
            almost_auto_threads(Threads::Auto, &small),
            Threads::Fixed(1)
        );
        assert_eq!(
            almost_auto_threads(Threads::Fixed(4), &small),
            Threads::Fixed(4)
        );
        let big = random_graph(300, 0.4, 7);
        assert!(big.edge_count() >= 2 * ALMOST_AUTO_EDGES_PER_WORKER);
        if exec::available_parallelism() > 1 {
            assert_eq!(almost_auto_threads(Threads::Auto, &big), Threads::Auto);
        } else {
            // One hardware thread: auto resolves to one worker above
            // the crossover too, and the clamp just makes it explicit.
            assert_eq!(almost_auto_threads(Threads::Auto, &big), Threads::Fixed(1));
        }
    }

    #[test]
    fn parallel_mode_dispatch_covers_exact_too() {
        let g = random_graph(40, 0.2, 5);
        assert_eq!(
            percolate_parallel(&g, 3).levels,
            percolate_parallel_mode(&g, 3, Mode::Exact).levels
        );
    }

    #[test]
    fn parallel_almost_crosses_the_union_threshold() {
        // A chain of 4-cliques {i..i+3}: consecutive pairs share 3
        // vertices — above the keyed band (KEY_MAX_L = 2), so the
        // counting prepass records them all in the k = 4 stratum,
        // which then exceeds PAR_UNION_MIN and exercises the
        // multi-worker stratum drain (not just the leader-inline
        // fallback).
        let n = 2 * PAR_UNION_MIN as u32;
        let mut cliques = CliqueSet::new();
        for i in 0..n {
            cliques.push(&[i, i + 1, i + 2, i + 3]);
        }
        cliques.canonicalize();
        let strata = SubsumptionStrata::build(&cliques);
        assert!(strata.at(4).len() >= PAR_UNION_MIN);
        let seq = crate::mode::almost_percolate_with_strata(
            cliques.clone(),
            SubsumptionStrata::build(&cliques),
        );
        let par = almost_sweep_parallel_impl(cliques, strata, Threads::Fixed(4), None)
            .expect("uncancellable");
        assert_eq!(seq.levels, par.levels);
        for level in &par.levels {
            assert_eq!(level.communities.len(), 1, "chain fully merges at every k");
        }
    }

    #[test]
    fn cancellable_almost_with_live_token_matches_plain() {
        let g = random_graph(60, 0.15, 9);
        let reference = crate::percolate_mode(&g, Mode::Almost);
        let token = exec::CancelToken::new();
        for threads in [1usize, 2, 4] {
            let got = percolate_parallel_cancellable_mode(
                &g,
                threads,
                Kernel::Auto,
                &token,
                Mode::Almost,
            )
            .expect("token never trips");
            assert_eq!(reference.levels, got.levels, "threads {threads}");
        }
    }

    #[test]
    fn tripped_token_cancels_almost_and_leaves_the_pool_reusable() {
        let g = random_graph(60, 0.15, 9);
        let token = exec::CancelToken::new();
        token.cancel();
        for threads in [1usize, 2, 4] {
            let err = percolate_parallel_cancellable_mode(
                &g,
                threads,
                Kernel::Auto,
                &token,
                Mode::Almost,
            );
            assert!(err.is_err(), "threads {threads}");
        }
        let seq = crate::percolate_mode(&g, Mode::Almost);
        let par = percolate_parallel_mode(&g, 4, Mode::Almost);
        assert_eq!(seq.levels, par.levels);
    }
}
