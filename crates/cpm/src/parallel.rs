//! The Lightweight Parallel Clique Percolation Method.
//!
//! Gregori, Lenzini, Mainardi and Orsini's companion algorithm made CPM
//! feasible on the 2010 AS topology (93 h on 48 cores). Its insight — the
//! expensive phases are clique enumeration and clique-overlap counting,
//! both embarrassingly parallel, while the percolation itself is cheap —
//! is reproduced here with crossbeam scoped threads:
//!
//! 1. maximal cliques: degeneracy outer loop striped across workers
//!    (delegated to [`cliques::parallel`]);
//! 2. overlap edges: clique ids striped across workers, each with its own
//!    scratch counter, merging thread-local edge buffers;
//! 3. the descending-k DSU sweep runs sequentially (linear, negligible).
//!
//! Output is bit-identical to the sequential [`crate::percolate`]; the
//! tests assert it and the bench suite measures the speedup.

use crate::overlap::{build_vertex_index, count_overlaps_of, OverlapEdge, VertexCliqueIndex};
use crate::percolation::percolate_from_overlaps;
use crate::result::CpmResult;
use asgraph::Graph;
use cliques::CliqueSet;

/// Runs the full CPM pipeline with `threads` workers.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
///
/// let g = Graph::complete(6);
/// let seq = cpm::percolate(&g);
/// let par = cpm::parallel::percolate_parallel(&g, 4);
/// assert_eq!(seq.total_communities(), par.total_communities());
/// ```
pub fn percolate_parallel(g: &Graph, threads: usize) -> CpmResult {
    assert!(threads > 0, "need at least one thread");
    let mut cliques = cliques::parallel::max_cliques_parallel(g, threads);
    // Same canonicalisation as the sequential path: the result is then
    // identical whatever the thread count.
    cliques.sort_canonical();
    let index = build_vertex_index(&cliques, g.node_count());
    let edges = overlap_edges_parallel(&cliques, &index, threads);
    percolate_from_overlaps(cliques, edges)
}

/// Computes all clique-overlap edges with `threads` workers.
///
/// Edges are returned grouped by worker stripe; order differs from the
/// sequential construction but the percolation result is order-invariant
/// (communities are keyed by ascending clique id).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn overlap_edges_parallel(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: usize,
) -> Vec<OverlapEdge> {
    assert!(threads > 0, "need at least one thread");
    let n = cliques.len();
    if threads == 1 || n < 2 * threads {
        let mut edges = Vec::new();
        let mut counts = vec![0u32; n];
        let mut touched = Vec::new();
        for i in 0..n {
            count_overlaps_of(
                cliques,
                index,
                i as u32,
                &mut counts,
                &mut touched,
                &mut edges,
            );
        }
        return edges;
    }

    let mut buffers: Vec<Vec<OverlapEdge>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut edges = Vec::new();
                let mut counts = vec![0u32; n];
                let mut touched = Vec::new();
                let mut i = t;
                while i < n {
                    count_overlaps_of(
                        cliques,
                        index,
                        i as u32,
                        &mut counts,
                        &mut touched,
                        &mut edges,
                    );
                    i += threads;
                }
                edges
            }));
        }
        for h in handles {
            buffers.push(h.join().expect("overlap worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let total: usize = buffers.iter().map(Vec::len).sum();
    let mut edges = Vec::with_capacity(total);
    for b in buffers {
        edges.extend(b);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::overlap_edges;
    use crate::percolate;

    fn random_graph(n: u32, p: f64, seed: u64) -> Graph {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(p) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_edges_match_sequential() {
        let g = random_graph(50, 0.2, 3);
        let cliques = cliques::max_cliques(&g);
        let index = build_vertex_index(&cliques, g.node_count());
        let mut seq = overlap_edges(&cliques, &index);
        for threads in 1..=4 {
            let mut par = overlap_edges_parallel(&cliques, &index, threads);
            par.sort_unstable();
            seq.sort_unstable();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_percolation_matches_sequential() {
        let g = random_graph(60, 0.15, 9);
        let seq = percolate(&g);
        let par = percolate_parallel(&g, 4);
        assert_eq!(seq.levels.len(), par.levels.len());
        for (ls, lp) in seq.levels.iter().zip(par.levels.iter()) {
            assert_eq!(ls.k, lp.k);
            let mut ms: Vec<_> = ls.communities.iter().map(|c| c.members.clone()).collect();
            let mut mp: Vec<_> = lp.communities.iter().map(|c| c.members.clone()).collect();
            ms.sort();
            mp.sort();
            assert_eq!(ms, mp, "level {}", ls.k);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let g = Graph::complete(3);
        let _ = percolate_parallel(&g, 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let r = percolate_parallel(&g, 2);
        assert_eq!(r.total_communities(), 0);
    }
}
