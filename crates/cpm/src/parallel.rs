//! The Lightweight Parallel Clique Percolation Method.
//!
//! Gregori, Lenzini, Mainardi and Orsini's companion algorithm made CPM
//! feasible on the 2010 AS topology (93 h on 48 cores). Its insight — the
//! expensive phases are clique enumeration and clique-overlap counting,
//! both embarrassingly parallel, while the percolation itself is cheap —
//! is reproduced here with crossbeam scoped threads:
//!
//! 1. maximal cliques: the degeneracy outer loop under an atomic-counter
//!    work-stealing deal (delegated to [`cliques::parallel`]);
//! 2. overlap counting: clique ids claimed in chunks of [`OVERLAP_CHUNK`]
//!    from a shared counter, each worker with its own scratch kernel
//!    state; per-chunk outputs are reassembled in chunk order, so the
//!    result is *identical* to the sequential construction — independent
//!    of thread count and scheduling races. Under the default
//!    [`Sweep::Fused`] workers emit straight into per-chunk overlap
//!    strata; under [`Sweep::Legacy`] into flat edge buffers;
//! 3. the descending-k sweep: under [`Sweep::Fused`] each stratum is
//!    drained across threads over a lock-free [`ConcurrentDsu`], with a
//!    barrier between strata ([`percolate_from_strata_parallel`]); under
//!    [`Sweep::Legacy`] it runs sequentially as in PR 2.
//!
//! Output is bit-identical to the sequential [`crate::percolate`]; the
//! tests assert it and the bench suite measures the speedup.

use crate::dsu_concurrent::ConcurrentDsu;
use crate::overlap::{
    build_vertex_index, overlap_uses_bitset, OverlapEdge, OverlapScratch, VertexCliqueIndex,
};
use crate::percolation::{percolate_from_overlaps, LevelSnapshotter};
use crate::result::{CpmResult, KLevel};
use crate::sweep::{
    chain_union_postings, overlap_strata_min, percolate_from_strata, OverlapStrata, Sweep,
};
use asgraph::Graph;
use cliques::{CliqueSet, Kernel};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Clique ids claimed per `fetch_add` during parallel overlap counting.
/// Overlap counting per clique is much cheaper than a Bron–Kerbosch
/// subproblem, so chunks are coarser than the enumerator's to keep the
/// shared counter cold.
pub const OVERLAP_CHUNK: usize = 256;

/// Stratum pairs claimed per `fetch_add` while draining one overlap
/// stratum into the concurrent union–find. A union is a handful of
/// atomic ops, so chunks are coarse to keep the shared counter out of
/// the way.
pub const UNION_CHUNK: usize = 2048;

/// Below this many pairs a stratum is drained on the calling thread:
/// spawning a scope costs more than the unions.
const PAR_UNION_MIN: usize = 4 * UNION_CHUNK;

/// Runs the full CPM pipeline with `threads` workers and the default
/// [`Kernel::Auto`] set kernel.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
///
/// let g = Graph::complete(6);
/// let seq = cpm::percolate(&g);
/// let par = cpm::parallel::percolate_parallel(&g, 4);
/// assert_eq!(seq.total_communities(), par.total_communities());
/// ```
pub fn percolate_parallel(g: &Graph, threads: usize) -> CpmResult {
    percolate_parallel_with_kernel(g, threads, Kernel::Auto)
}

/// [`percolate_parallel`] with an explicit set [`Kernel`] for both the
/// clique enumeration and the overlap counting phases. The result is
/// identical whatever the kernel or thread count.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn percolate_parallel_with_kernel(g: &Graph, threads: usize, kernel: Kernel) -> CpmResult {
    percolate_parallel_with(g, threads, kernel, Sweep::default())
}

/// [`percolate_parallel`] with explicit [`Kernel`] and [`Sweep`]. The
/// result is identical whatever the kernel, sweep, or thread count.
///
/// Under [`Sweep::Fused`] *every* phase after enumeration is parallel
/// too: overlap counting emits straight into per-chunk strata, and the
/// percolation drains each stratum across threads over a
/// [`ConcurrentDsu`] (see [`percolate_from_strata_parallel`]). Under
/// [`Sweep::Legacy`] the PR-2 pipeline runs: parallel flat edge list,
/// sequential sweep.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn percolate_parallel_with(
    g: &Graph,
    threads: usize,
    kernel: Kernel,
    sweep: Sweep,
) -> CpmResult {
    assert!(threads > 0, "need at least one thread");
    let mut cliques = cliques::parallel::max_cliques_parallel_with(g, threads, kernel);
    // Same canonicalisation entry point as the sequential path: the
    // result is then identical whatever the thread count.
    cliques.canonicalize();
    let index = build_vertex_index(&cliques, g.node_count());
    match sweep {
        Sweep::Fused => {
            // min_overlap = 2: the o = 1 stratum is never stored — the
            // k = 2 level is chained straight off the posting lists.
            let strata = overlap_strata_parallel_min(&cliques, &index, threads, kernel, 2);
            percolate_from_strata_parallel(cliques, strata, threads, &index)
        }
        Sweep::Legacy => {
            let edges = overlap_edges_parallel_with(&cliques, &index, threads, kernel);
            percolate_from_overlaps(cliques, edges)
        }
    }
}

/// Computes all clique-overlap edges with `threads` workers and the
/// default [`Kernel::Auto`].
///
/// The edge list is identical (content *and* order) to the sequential
/// [`crate::overlap::overlap_edges`]: work-stolen chunks are merged back
/// in chunk order.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn overlap_edges_parallel(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: usize,
) -> Vec<OverlapEdge> {
    overlap_edges_parallel_with(cliques, index, threads, Kernel::Auto)
}

/// [`overlap_edges_parallel`] with an explicit counting [`Kernel`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn overlap_edges_parallel_with(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: usize,
    kernel: Kernel,
) -> Vec<OverlapEdge> {
    assert!(threads > 0, "need at least one thread");
    let n = cliques.len();
    let use_bitset = overlap_uses_bitset(kernel, cliques);
    if threads == 1 || n < 2 * threads {
        let mut edges = Vec::new();
        let mut scratch = OverlapScratch::new(cliques, use_bitset);
        for i in 0..n {
            scratch.count_overlaps_of(cliques, index, i as u32, |a, b, overlap| {
                edges.push(OverlapEdge { a, b, overlap });
            });
        }
        return edges;
    }

    let next = AtomicUsize::new(0);
    let next_ref = &next;
    let mut chunks: Vec<(usize, Vec<OverlapEdge>)> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, Vec<OverlapEdge>)> = Vec::new();
                let mut scratch = OverlapScratch::new(cliques, use_bitset);
                loop {
                    let start = next_ref.fetch_add(OVERLAP_CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + OVERLAP_CHUNK).min(n);
                    let mut edges = Vec::new();
                    for i in start..end {
                        scratch.count_overlaps_of(cliques, index, i as u32, |a, b, overlap| {
                            edges.push(OverlapEdge { a, b, overlap });
                        });
                    }
                    local.push((start, edges));
                }
                local
            }));
        }
        for h in handles {
            chunks.extend(h.join().expect("overlap worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    chunks.sort_unstable_by_key(|&(start, _)| start);
    let total: usize = chunks.iter().map(|(_, e)| e.len()).sum();
    let mut edges = Vec::with_capacity(total);
    for (_, chunk) in chunks {
        edges.extend(chunk);
    }
    edges
}

/// Computes the overlap stratification with `threads` workers and the
/// default [`Kernel::Auto`].
///
/// Identical — stratum for stratum, pair for pair, in order — to the
/// sequential [`crate::overlap_strata`]: workers emit into per-chunk
/// mini-strata which are concatenated in ascending chunk order.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn overlap_strata_parallel(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: usize,
) -> OverlapStrata {
    overlap_strata_parallel_with(cliques, index, threads, Kernel::Auto)
}

/// [`overlap_strata_parallel`] with an explicit counting [`Kernel`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn overlap_strata_parallel_with(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: usize,
    kernel: Kernel,
) -> OverlapStrata {
    overlap_strata_parallel_min(cliques, index, threads, kernel, 1)
}

/// [`overlap_strata_parallel_with`] restricted to pairs with overlap ≥
/// `min_overlap` (see [`crate::overlap_strata_min`] for why the fused
/// pipeline passes 2).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn overlap_strata_parallel_min(
    cliques: &CliqueSet,
    index: &VertexCliqueIndex,
    threads: usize,
    kernel: Kernel,
    min_overlap: u32,
) -> OverlapStrata {
    assert!(threads > 0, "need at least one thread");
    let n = cliques.len();
    if threads == 1 || n < 2 * threads {
        return overlap_strata_min(cliques, index, kernel, min_overlap);
    }

    let max_size = cliques.max_size();
    let use_bitset = overlap_uses_bitset(kernel, cliques);
    let next = AtomicUsize::new(0);
    let next_ref = &next;
    let mut chunks: Vec<(usize, OverlapStrata)> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, OverlapStrata)> = Vec::new();
                let mut scratch = OverlapScratch::new(cliques, use_bitset);
                loop {
                    let start = next_ref.fetch_add(OVERLAP_CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + OVERLAP_CHUNK).min(n);
                    let mut strata = OverlapStrata::new(max_size);
                    for i in start..end {
                        scratch.count_overlaps_of(cliques, index, i as u32, |a, b, o| {
                            strata.push(a, b, o);
                        });
                        // Unconditional emit + per-clique discard: see
                        // `clear_below`.
                        strata.clear_below(min_overlap);
                    }
                    local.push((start, strata));
                }
                local
            }));
        }
        for h in handles {
            chunks.extend(h.join().expect("overlap worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    // Chunk-ordered reassembly, one exact-capacity allocation per
    // stratum; chunks are dropped as they are absorbed, so the peak is
    // one copy of the pairs plus the largest in-flight chunk.
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut strata = OverlapStrata::new(max_size);
    for o in 1..max_size {
        let total: usize = chunks.iter().map(|(_, c)| c.stratum(o).len()).sum();
        strata.reserve(o, total);
    }
    for (_, mut chunk) in chunks {
        strata.absorb(&mut chunk);
    }
    strata
}

/// The parallel fused sweep: descending k, each stratum drained across
/// `threads` workers over a lock-free [`ConcurrentDsu`], with the
/// crossbeam scope join as the barrier between strata.
///
/// The barrier is what preserves Theorem 1: each level's communities and
/// the previous level's parent links are snapshotted from quiescent
/// union–find state, after stratum `k−1` has fully drained and before
/// stratum `k−2` starts. Within a stratum, union order is free —
/// union–find is confluent, and union-by-index makes even the *roots*
/// deterministic (the minimum clique id of each component), so the
/// result is bit-identical to the sequential
/// [`crate::percolate_from_strata`] at every thread count.
///
/// As in the sequential sweep, `index` must be the unfiltered inverted
/// index of `cliques`: it supplies the k = 2 level (posting-list
/// chaining) and stratum 1 is ignored.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn percolate_from_strata_parallel(
    cliques: CliqueSet,
    mut strata: OverlapStrata,
    threads: usize,
    index: &VertexCliqueIndex,
) -> CpmResult {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 {
        return percolate_from_strata(cliques, strata, index);
    }
    let k_max = cliques.max_size();
    if k_max < 2 {
        return CpmResult {
            cliques,
            levels: Vec::new(),
        };
    }

    let dsu = ConcurrentDsu::new(cliques.len());
    let mut snap = LevelSnapshotter::new(cliques.len());
    let mut levels_desc: Vec<KLevel> = Vec::with_capacity(k_max - 1);
    for k in (3..=k_max).rev() {
        let pairs = strata.take(k - 1);
        if pairs.len() < PAR_UNION_MIN {
            for &(a, b) in &pairs {
                dsu.union(a, b);
            }
        } else {
            let next = AtomicUsize::new(0);
            let (next_ref, pairs_ref, dsu_ref) = (&next, pairs.as_slice(), &dsu);
            crossbeam::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(move |_| loop {
                        let start = next_ref.fetch_add(UNION_CHUNK, Ordering::Relaxed);
                        if start >= pairs_ref.len() {
                            break;
                        }
                        let end = (start + UNION_CHUNK).min(pairs_ref.len());
                        for &(a, b) in &pairs_ref[start..end] {
                            dsu_ref.union(a, b);
                        }
                    });
                }
                // Scope join = the per-stratum barrier: every union of
                // stratum k−1 happens-before the snapshot below.
            })
            .expect("union worker panicked");
        }
        drop(pairs);
        let level = snap.snapshot(&cliques, k, &mut |x| dsu.find(x), levels_desc.last_mut());
        levels_desc.push(level);
    }
    // k = 2 off the posting lists, as in the sequential sweep. The
    // chain is Σ |postings| unions — far below PAR_UNION_MIN territory
    // in practice — so it runs inline on the calling thread.
    drop(strata.take(1));
    chain_union_postings(index, &mut |a, b| {
        dsu.union(a, b);
    });
    let level = snap.snapshot(&cliques, 2, &mut |x| dsu.find(x), levels_desc.last_mut());
    levels_desc.push(level);
    levels_desc.reverse();
    CpmResult {
        cliques,
        levels: levels_desc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::{overlap_edges, overlap_edges_with};
    use crate::percolate;
    use crate::sweep::overlap_strata_with;

    fn random_graph(n: u32, p: f64, seed: u64) -> Graph {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(p) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_edges_match_sequential_exactly() {
        let g = random_graph(50, 0.2, 3);
        let cliques = cliques::max_cliques(&g);
        let index = build_vertex_index(&cliques, g.node_count());
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let seq = overlap_edges_with(&cliques, &index, kernel);
            for threads in 1..=4 {
                let par = overlap_edges_parallel_with(&cliques, &index, threads, kernel);
                // Work-stealing chunks are merged in order: not just the
                // same edges — the same sequence.
                assert_eq!(seq, par, "kernel {kernel}, threads {threads}");
            }
        }
        // And the kernels agree with the historical default.
        assert_eq!(
            overlap_edges(&cliques, &index),
            overlap_edges_parallel(&cliques, &index, 4)
        );
    }

    #[test]
    fn parallel_percolation_matches_sequential() {
        let g = random_graph(60, 0.15, 9);
        let seq = percolate(&g);
        let par = percolate_parallel(&g, 4);
        assert_eq!(seq.levels.len(), par.levels.len());
        for (ls, lp) in seq.levels.iter().zip(par.levels.iter()) {
            assert_eq!(ls.k, lp.k);
            let mut ms: Vec<_> = ls.communities.iter().map(|c| c.members.clone()).collect();
            let mut mp: Vec<_> = lp.communities.iter().map(|c| c.members.clone()).collect();
            ms.sort();
            mp.sort();
            assert_eq!(ms, mp, "level {}", ls.k);
        }
    }

    #[test]
    fn parallel_strata_match_sequential_exactly() {
        let g = random_graph(50, 0.2, 3);
        let cliques = cliques::max_cliques(&g);
        let index = build_vertex_index(&cliques, g.node_count());
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let seq = overlap_strata_with(&cliques, &index, kernel);
            for threads in 1..=4 {
                let par = overlap_strata_parallel_with(&cliques, &index, threads, kernel);
                // Chunk-ordered reassembly: same strata, same order.
                assert_eq!(seq, par, "kernel {kernel}, threads {threads}");
            }
        }
        assert_eq!(
            crate::overlap_strata(&cliques, &index),
            overlap_strata_parallel(&cliques, &index, 4)
        );
    }

    #[test]
    fn fused_and_legacy_parallel_sweeps_are_bit_identical() {
        let g = random_graph(60, 0.15, 9);
        let reference = percolate(&g);
        for threads in [1, 2, 3, 7] {
            for sweep in [Sweep::Fused, Sweep::Legacy] {
                let par = percolate_parallel_with(&g, threads, Kernel::Auto, sweep);
                assert_eq!(reference.cliques, par.cliques, "{sweep}, threads {threads}");
                assert_eq!(reference.levels, par.levels, "{sweep}, threads {threads}");
            }
        }
    }

    #[test]
    fn strata_sweep_crosses_the_parallel_union_threshold() {
        // Force the multi-threaded stratum drain (pairs >= PAR_UNION_MIN),
        // not just the small-stratum sequential fallback: a chain of
        // 3-cliques {i, i+1, i+2} puts every consecutive pair in stratum
        // 2 (the smallest stratum the sweep drains from pairs — o = 1
        // comes off the posting lists), and the chain is long enough to
        // clear the threshold.
        let n = 2 * PAR_UNION_MIN as u32;
        let mut cliques = CliqueSet::new();
        for i in 0..n {
            cliques.push(&[i, i + 1, i + 2]);
        }
        let index = build_vertex_index(&cliques, n as usize + 2);
        let strata = crate::overlap_strata(&cliques, &index);
        assert!(strata.stratum(2).len() >= PAR_UNION_MIN);
        let seq = percolate_from_strata(cliques.clone(), strata.clone(), &index);
        let par = percolate_from_strata_parallel(cliques, strata, 4, &index);
        assert_eq!(seq.levels, par.levels);
        for level in &par.levels {
            assert_eq!(level.communities.len(), 1, "chain fully merges at every k");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let g = Graph::complete(3);
        let _ = percolate_parallel(&g, 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let r = percolate_parallel(&g, 2);
        assert_eq!(r.total_communities(), 0);
    }
}
