//! Same-k overlap analysis (§4).
//!
//! The paper studies how communities of the *same* k relate (computing
//! overlap across different k is confounded by nesting): every parallel
//! community shares members with its main community (with 6 exceptions in
//! the 2010 data), the parallel↔main overlap fraction averages 0.704 over
//! k with variance 0.023, while parallel↔parallel overlap varies too much
//! to summarise (variance 0.136).

use crate::tree::CommunityTree;
use cpm::CpmResult;

/// Overlap statistics for one level k.
#[derive(Debug, Clone, PartialEq)]
pub struct KOverlapStats {
    /// The level.
    pub k: u32,
    /// Number of parallel communities at this level.
    pub parallel_count: usize,
    /// Mean overlap fraction between each parallel community and the
    /// main community (`None` when there are no parallel communities).
    pub parallel_main_avg: Option<f64>,
    /// Minimum parallel↔main overlap fraction.
    pub parallel_main_min: Option<f64>,
    /// Parallel communities sharing no member with the main community
    /// (the paper found 6 such exceptions overall).
    pub parallel_disjoint_from_main: usize,
    /// Mean overlap fraction across parallel↔parallel pairs.
    pub parallel_parallel_avg: Option<f64>,
    /// Number of parallel↔parallel pairs with zero overlap.
    pub parallel_parallel_disjoint: usize,
    /// Total parallel↔parallel pairs.
    pub parallel_parallel_pairs: usize,
}

/// The full overlap report across levels.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapReport {
    /// Per-level statistics (ascending k; levels with at least 2
    /// communities).
    pub per_k: Vec<KOverlapStats>,
    /// Mean over k of the per-level parallel↔main averages (the paper:
    /// 0.704).
    pub parallel_main_mean: Option<f64>,
    /// Variance over k of the same (the paper: 0.023).
    pub parallel_main_variance: Option<f64>,
    /// Mean over k of the parallel↔parallel averages.
    pub parallel_parallel_mean: Option<f64>,
    /// Variance over k of the same (the paper: 0.136 — too high to be a
    /// useful summary).
    pub parallel_parallel_variance: Option<f64>,
    /// Total parallel communities disjoint from their main community.
    pub total_disjoint_from_main: usize,
}

/// Computes the same-k overlap report.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use kclique_core::{overlap_report, CommunityTree};
///
/// // Two K4s sharing vertex 3: at k = 4 the parallel community overlaps
/// // the main one in exactly one node.
/// let mut b = asgraph::GraphBuilder::new();
/// for u in 0..4u32 {
///     for v in (u + 1)..4 { b.add_edge(u, v); }
/// }
/// for &u in &[3u32, 4, 5, 6] {
///     for &v in &[3u32, 4, 5, 6] {
///         if u < v { b.add_edge(u, v); }
///     }
/// }
/// let g = b.build();
/// let result = cpm::percolate(&g);
/// let tree = CommunityTree::build(&result);
/// let report = overlap_report(&result, &tree);
/// let k4 = report.per_k.iter().find(|s| s.k == 4).unwrap();
/// assert_eq!(k4.parallel_count, 1);
/// assert_eq!(k4.parallel_main_avg, Some(0.25)); // 1 of 4 members shared
/// # assert_eq!(k4.parallel_disjoint_from_main, 0);
/// ```
pub fn overlap_report(result: &CpmResult, tree: &CommunityTree) -> OverlapReport {
    let mut per_k = Vec::new();
    let mut total_disjoint = 0usize;

    for level in &result.levels {
        if level.communities.len() < 2 {
            continue;
        }
        let k = level.k;
        let main_idx = tree
            .main_path()
            .iter()
            .find(|id| id.k == k)
            .map(|id| id.idx as usize);
        let Some(main_idx) = main_idx else { continue };
        let main = &level.communities[main_idx];

        let mut pm_fractions = Vec::new();
        let mut disjoint = 0usize;
        let parallel: Vec<&cpm::Community> = level
            .communities
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != main_idx)
            .map(|(_, c)| c)
            .collect();
        for p in &parallel {
            let f = p.overlap_fraction(main);
            if p.overlap(main) == 0 {
                disjoint += 1;
            }
            pm_fractions.push(f);
        }
        total_disjoint += disjoint;

        let mut pp_fractions = Vec::new();
        let mut pp_disjoint = 0usize;
        for (i, a) in parallel.iter().enumerate() {
            for b in &parallel[i + 1..] {
                let f = a.overlap_fraction(b);
                if a.overlap(b) == 0 {
                    pp_disjoint += 1;
                }
                pp_fractions.push(f);
            }
        }

        per_k.push(KOverlapStats {
            k,
            parallel_count: parallel.len(),
            parallel_main_avg: mean(&pm_fractions),
            parallel_main_min: pm_fractions
                .iter()
                .copied()
                .min_by(|a, b| a.partial_cmp(b).expect("fractions are finite")),
            parallel_disjoint_from_main: disjoint,
            parallel_parallel_avg: mean(&pp_fractions),
            parallel_parallel_disjoint: pp_disjoint,
            parallel_parallel_pairs: pp_fractions.len(),
        });
    }

    let pm_avgs: Vec<f64> = per_k.iter().filter_map(|s| s.parallel_main_avg).collect();
    let pp_avgs: Vec<f64> = per_k
        .iter()
        .filter_map(|s| s.parallel_parallel_avg)
        .collect();
    OverlapReport {
        parallel_main_mean: mean(&pm_avgs),
        parallel_main_variance: variance(&pm_avgs),
        parallel_parallel_mean: mean(&pp_avgs),
        parallel_parallel_variance: variance(&pp_avgs),
        per_k,
        total_disjoint_from_main: total_disjoint,
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Graph;

    fn analyse(g: &Graph) -> OverlapReport {
        let result = cpm::percolate(g);
        let tree = CommunityTree::build(&result);
        overlap_report(&result, &tree)
    }

    #[test]
    fn single_community_levels_are_skipped() {
        let report = analyse(&Graph::complete(5));
        assert!(report.per_k.is_empty());
        assert_eq!(report.parallel_main_mean, None);
    }

    #[test]
    fn disjoint_parallel_detected() {
        // Two K4s joined by a single edge: the parallel K4 shares no
        // member with the main K4 at k = 3 and 4.
        let mut b = asgraph::GraphBuilder::with_nodes(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
                b.add_edge(u + 4, v + 4);
            }
        }
        b.add_edge(3, 4);
        let report = analyse(&b.build());
        assert_eq!(report.per_k.len(), 2);
        assert_eq!(report.total_disjoint_from_main, 2);
        for s in &report.per_k {
            assert_eq!(s.parallel_main_avg, Some(0.0));
            assert_eq!(s.parallel_disjoint_from_main, 1);
            assert_eq!(s.parallel_parallel_pairs, 0);
        }
    }

    #[test]
    fn shared_vertex_fraction() {
        // K4s sharing one node: overlap fraction 1/4.
        let mut b = asgraph::GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        for &u in &[3u32, 4, 5, 6] {
            for &v in &[3u32, 4, 5, 6] {
                if u < v {
                    b.add_edge(u, v);
                }
            }
        }
        let report = analyse(&b.build());
        let k4 = report.per_k.iter().find(|s| s.k == 4).unwrap();
        assert_eq!(k4.parallel_main_avg, Some(0.25));
        assert_eq!(k4.parallel_main_min, Some(0.25));
        assert_eq!(k4.parallel_disjoint_from_main, 0);
    }

    #[test]
    fn mean_and_variance_helpers() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn three_parallel_k4s_pairwise_stats() {
        // Main K5 {0..4}; two parallel K4s hanging off node 0 that share
        // nodes {0, 5} with each other.
        let mut b = asgraph::GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        for set in [[0u32, 5, 6, 7], [0u32, 5, 8, 9]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(set[i], set[j]);
                }
            }
        }
        let report = analyse(&b.build());
        let k4 = report.per_k.iter().find(|s| s.k == 4).unwrap();
        assert_eq!(k4.parallel_count, 2);
        assert_eq!(k4.parallel_parallel_pairs, 1);
        // The two parallel K4s share {0, 5}: fraction 2/4.
        assert_eq!(k4.parallel_parallel_avg, Some(0.5));
        assert_eq!(k4.parallel_parallel_disjoint, 0);
    }
}
