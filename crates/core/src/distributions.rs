//! Cover statistics in the style of Palla et al. (Nature 2005).
//!
//! The CPM paper the reproduction builds on characterises covers by four
//! distributions: community size, *membership number* (how many
//! communities a node belongs to), community *degree* (how many other
//! communities a community overlaps), and overlap size. The ICDCS paper
//! summarises rather than plots these, but a CPM library without them
//! would be incomplete — and they power the `cover_distributions`
//! extension experiment.

use cpm::{CpmResult, KLevel};
use std::collections::BTreeMap;

/// The four Palla cover distributions at one level `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverDistributions {
    /// Level the distributions describe.
    pub k: u32,
    /// `(community size, count)` ascending.
    pub community_size: Vec<(usize, usize)>,
    /// `(memberships per node, node count)` ascending, nodes with zero
    /// memberships excluded.
    pub membership_number: Vec<(usize, usize)>,
    /// `(overlapping-community pairs share, pair count)` ascending —
    /// only pairs with positive overlap appear.
    pub overlap_size: Vec<(usize, usize)>,
    /// `(community degree, community count)` ascending, where a
    /// community's degree is the number of same-level communities it
    /// shares at least one node with.
    pub community_degree: Vec<(usize, usize)>,
}

/// Computes the cover distributions of `level` over a graph with
/// `node_count` nodes.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use kclique_core::cover_distributions;
///
/// // Two K4s sharing one vertex: two communities of size 4, the shared
/// // vertex has membership 2, one overlapping pair of share 1.
/// let mut b = asgraph::GraphBuilder::new();
/// for set in [[0u32, 1, 2, 3], [3u32, 4, 5, 6]] {
///     for i in 0..4 {
///         for j in (i + 1)..4 {
///             b.add_edge(set[i], set[j]);
///         }
///     }
/// }
/// let g = b.build();
/// let result = cpm::percolate(&g);
/// let d = cover_distributions(result.level(4).unwrap(), g.node_count());
/// assert_eq!(d.community_size, vec![(4, 2)]);
/// assert_eq!(d.membership_number, vec![(1, 6), (2, 1)]);
/// assert_eq!(d.overlap_size, vec![(1, 1)]);
/// assert_eq!(d.community_degree, vec![(1, 2)]);
/// ```
pub fn cover_distributions(level: &KLevel, node_count: usize) -> CoverDistributions {
    let comms = &level.communities;

    let mut size_hist: BTreeMap<usize, usize> = BTreeMap::new();
    for c in comms {
        *size_hist.entry(c.size()).or_insert(0) += 1;
    }

    let mut memberships = vec![0usize; node_count];
    for c in comms {
        for &v in &c.members {
            memberships[v as usize] += 1;
        }
    }
    let mut membership_hist: BTreeMap<usize, usize> = BTreeMap::new();
    for &m in memberships.iter().filter(|&&m| m > 0) {
        *membership_hist.entry(m).or_insert(0) += 1;
    }

    let mut overlap_hist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut degrees = vec![0usize; comms.len()];
    for i in 0..comms.len() {
        for j in (i + 1)..comms.len() {
            let o = comms[i].overlap(&comms[j]);
            if o > 0 {
                *overlap_hist.entry(o).or_insert(0) += 1;
                degrees[i] += 1;
                degrees[j] += 1;
            }
        }
    }
    let mut degree_hist: BTreeMap<usize, usize> = BTreeMap::new();
    for &d in &degrees {
        *degree_hist.entry(d).or_insert(0) += 1;
    }

    CoverDistributions {
        k: level.k,
        community_size: size_hist.into_iter().collect(),
        membership_number: membership_hist.into_iter().collect(),
        overlap_size: overlap_hist.into_iter().collect(),
        community_degree: degree_hist.into_iter().collect(),
    }
}

/// Convenience: distributions for every level of a result.
pub fn all_cover_distributions(result: &CpmResult, node_count: usize) -> Vec<CoverDistributions> {
    result
        .levels
        .iter()
        .map(|l| cover_distributions(l, node_count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Graph;

    #[test]
    fn disjoint_communities_have_no_overlap() {
        let mut b = asgraph::GraphBuilder::with_nodes(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
                b.add_edge(u + 4, v + 4);
            }
        }
        let g = b.build();
        let result = cpm::percolate(&g);
        let d = cover_distributions(result.level(4).unwrap(), g.node_count());
        assert_eq!(d.community_size, vec![(4, 2)]);
        assert!(d.overlap_size.is_empty());
        assert_eq!(d.community_degree, vec![(0, 2)]);
        assert_eq!(d.membership_number, vec![(1, 8)]);
    }

    #[test]
    fn histogram_totals_are_consistent() {
        let topo = topology::generate(&topology::ModelConfig::tiny(42)).unwrap();
        let result = cpm::percolate(&topo.graph);
        for d in all_cover_distributions(&result, topo.graph.node_count()) {
            let level = result.level(d.k).unwrap();
            let total_comms: usize = d.community_size.iter().map(|&(_, c)| c).sum();
            assert_eq!(total_comms, level.communities.len());
            let degree_total: usize = d.community_degree.iter().map(|&(_, c)| c).sum();
            assert_eq!(degree_total, level.communities.len());
            // Sum over nodes of membership = sum of community sizes.
            let weighted_memberships: usize = d
                .membership_number
                .iter()
                .map(|&(m, count)| m * count)
                .sum();
            let total_size: usize = level.communities.iter().map(|c| c.size()).sum();
            assert_eq!(weighted_memberships, total_size);
        }
    }

    #[test]
    fn single_community_graph() {
        let g = Graph::complete(5);
        let result = cpm::percolate(&g);
        let d = cover_distributions(result.level(3).unwrap(), 5);
        assert_eq!(d.community_size, vec![(5, 1)]);
        assert_eq!(d.community_degree, vec![(0, 1)]);
        assert!(d.overlap_size.is_empty());
    }
}
