//! Per-community structural metrics (Figures 4.3 and 4.4).

use crate::tree::CommunityTree;
use asgraph::metrics::community_metrics;
use asgraph::Graph;
use cpm::{CommunityId, CpmResult};

/// One row of the size / link-density / ODF series: everything the
/// paper's Figures 4.3, 4.4(a) and 4.4(b) plot for one community.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Community identity.
    pub id: CommunityId,
    /// Whether it lies on the main path.
    pub is_main: bool,
    /// Number of member ASes (Figure 4.3).
    pub size: usize,
    /// Internal edges over the full-mesh maximum (Figure 4.4a).
    pub link_density: f64,
    /// Mean member Out-Degree Fraction (Figure 4.4b).
    pub average_odf: f64,
    /// Mean total degree of members in the whole graph (§4.2 reports
    /// 500.2 for trunk main communities).
    pub average_degree: f64,
}

/// Computes a [`MetricRow`] for every community in the result.
///
/// Rows come out ascending in `(k, idx)`.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use kclique_core::{metric_rows, CommunityTree};
///
/// let g = Graph::complete(4);
/// let result = cpm::percolate(&g);
/// let tree = CommunityTree::build(&result);
/// let rows = metric_rows(&g, &result, &tree);
/// assert_eq!(rows.len(), 3); // k = 2, 3, 4
/// assert!(rows.iter().all(|r| r.link_density == 1.0));
/// ```
pub fn metric_rows(graph: &Graph, result: &CpmResult, tree: &CommunityTree) -> Vec<MetricRow> {
    result
        .iter()
        .map(|(id, c)| {
            let m = community_metrics(graph, &c.members);
            let degree_sum: usize = c.members.iter().map(|&v| graph.degree(v)).sum();
            MetricRow {
                id,
                is_main: tree.is_main(id),
                size: m.size,
                link_density: m.link_density,
                average_odf: m.average_odf,
                average_degree: if m.size == 0 {
                    0.0
                } else {
                    degree_sum as f64 / m.size as f64
                },
            }
        })
        .collect()
}

/// Splits rows into `(main, parallel)` series, each ascending in k — the
/// two point styles of the paper's figures.
pub fn split_series(rows: &[MetricRow]) -> (Vec<&MetricRow>, Vec<&MetricRow>) {
    rows.iter().partition(|r| r.is_main)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(g: &Graph) -> (CpmResult, CommunityTree) {
        let result = cpm::percolate(g);
        let tree = CommunityTree::build(&result);
        (result, tree)
    }

    #[test]
    fn clique_rows_are_dense_and_closed() {
        let g = Graph::complete(5);
        let (result, tree) = setup(&g);
        let rows = metric_rows(&g, &result, &tree);
        for r in &rows {
            assert_eq!(r.size, 5);
            assert_eq!(r.link_density, 1.0);
            assert_eq!(r.average_odf, 0.0);
            assert_eq!(r.average_degree, 4.0);
            assert!(r.is_main);
        }
    }

    #[test]
    fn main_and_parallel_split() {
        // K4 + K4 bridged: the main series has one row per level, the
        // parallel series the rest.
        let mut b = asgraph::GraphBuilder::with_nodes(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
                b.add_edge(u + 4, v + 4);
            }
        }
        b.add_edge(3, 4);
        let g = b.build();
        let (result, tree) = setup(&g);
        let rows = metric_rows(&g, &result, &tree);
        let (main, parallel) = split_series(&rows);
        assert_eq!(main.len(), 3);
        assert_eq!(parallel.len(), 2);
        // The k=2 main community covers everything: zero ODF.
        assert_eq!(main[0].average_odf, 0.0);
        // Parallel K4s have positive ODF (the bridge edge) and full
        // density.
        for p in parallel {
            assert_eq!(p.link_density, 1.0);
            assert!(p.average_odf > 0.0);
        }
    }

    #[test]
    fn rows_ascend_by_level() {
        let g = Graph::complete(6);
        let (result, tree) = setup(&g);
        let rows = metric_rows(&g, &result, &tree);
        for w in rows.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }
}
