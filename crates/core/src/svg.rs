//! Minimal SVG scatter plots for the figure reproductions.
//!
//! The paper's Figures 4.1, 4.3 and 4.4 are k-vs-quantity scatter plots
//! with two point styles (main ● vs parallel ○) and, for Figure 4.3, a
//! log-scale y axis. This module renders exactly that family of plots
//! with no dependencies, so `--out` can drop ready-to-open `.svg` files
//! next to the TSVs.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; `y <= 0` points are dropped on log axes.
    pub points: Vec<(f64, f64)>,
    /// Filled marker (the paper uses filled = main, hollow = parallel).
    pub filled: bool,
}

/// A scatter plot in the style of the paper's figures.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPlot {
    /// Title rendered above the axes.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// Logarithmic y axis (Figure 4.3).
    pub log_y: bool,
    /// The series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

impl ScatterPlot {
    /// Renders the plot as a standalone SVG document.
    ///
    /// Returns a minimal empty document if no series has a drawable
    /// point.
    pub fn to_svg(&self) -> String {
        let mut pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|&(_, y)| !self.log_y || y > 0.0)
            .collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = writeln!(
            out,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="24" font-size="15" font-family="sans-serif" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        if pts.is_empty() {
            out.push_str("</svg>\n");
            return out;
        }
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite points"));
        let (x_min, x_max) = bounds(pts.iter().map(|p| p.0));
        let (y_min, y_max) = if self.log_y {
            let (lo, hi) = bounds(pts.iter().map(|p| p.1.log10()));
            (lo.floor(), hi.ceil().max(lo.floor() + 1.0))
        } else {
            let (lo, hi) = bounds(pts.iter().map(|p| p.1));
            (lo.min(0.0), if hi > lo { hi } else { lo + 1.0 })
        };

        let sx = |x: f64| {
            MARGIN_L + (x - x_min) / (x_max - x_min).max(1e-9) * (WIDTH - MARGIN_L - MARGIN_R)
        };
        let sy = |y: f64| {
            let v = if self.log_y { y.log10() } else { y };
            HEIGHT
                - MARGIN_B
                - (v - y_min) / (y_max - y_min).max(1e-9) * (HEIGHT - MARGIN_T - MARGIN_B)
        };

        // Axes.
        let _ = writeln!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
            HEIGHT - MARGIN_B,
            WIDTH - MARGIN_R,
            HEIGHT - MARGIN_B
        );
        let _ = writeln!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{:.1}" stroke="black"/>"#,
            HEIGHT - MARGIN_B
        );
        // X ticks: integers when the range is small.
        let x_ticks = tick_values(x_min, x_max, 10);
        for t in &x_ticks {
            let x = sx(*t);
            let _ = writeln!(
                out,
                r#"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="black"/>"#,
                HEIGHT - MARGIN_B,
                HEIGHT - MARGIN_B + 5.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{x:.1}" y="{:.1}" font-size="11" font-family="sans-serif" text-anchor="middle">{}</text>"#,
                HEIGHT - MARGIN_B + 18.0,
                format_tick(*t)
            );
        }
        // Y ticks.
        if self.log_y {
            let mut exp = y_min as i32;
            while (exp as f64) <= y_max {
                let y = sy(10f64.powi(exp));
                let _ = writeln!(
                    out,
                    r#"<line x1="{:.1}" y1="{y:.1}" x2="{MARGIN_L}" y2="{y:.1}" stroke="black"/>"#,
                    MARGIN_L - 5.0
                );
                let _ = writeln!(
                    out,
                    r#"<text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif" text-anchor="end">1e{exp}</text>"#,
                    MARGIN_L - 8.0,
                    y + 4.0
                );
                exp += 1;
            }
        } else {
            for t in tick_values(y_min, y_max, 8) {
                let y = sy(t);
                let _ = writeln!(
                    out,
                    r#"<line x1="{:.1}" y1="{y:.1}" x2="{MARGIN_L}" y2="{y:.1}" stroke="black"/>"#,
                    MARGIN_L - 5.0
                );
                let _ = writeln!(
                    out,
                    r#"<text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif" text-anchor="end">{}</text>"#,
                    MARGIN_L - 8.0,
                    y + 4.0,
                    format_tick(t)
                );
            }
        }
        // Axis labels.
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="13" font-family="sans-serif" text-anchor="middle">{}</text>"#,
            (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
            HEIGHT - 10.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{:.1}" font-size="13" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            escape(&self.y_label)
        );

        // Points + legend.
        for (si, series) in self.series.iter().enumerate() {
            let fill = if series.filled { "black" } else { "white" };
            for &(x, y) in &series.points {
                if self.log_y && y <= 0.0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="{fill}" stroke="black"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            let ly = MARGIN_T + 14.0 * si as f64;
            let _ = writeln!(
                out,
                r#"<circle cx="{:.1}" cy="{ly:.1}" r="3.5" fill="{fill}" stroke="black"/>"#,
                WIDTH - MARGIN_R - 110.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="12" font-family="sans-serif">{}</text>"#,
                WIDTH - MARGIN_R - 100.0,
                ly + 4.0,
                escape(&series.name)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

/// Round tick positions covering `[lo, hi]` with at most `max` ticks.
fn tick_values(lo: f64, hi: f64, max: usize) -> Vec<f64> {
    let span = (hi - lo).max(1e-9);
    let raw = span / max as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| span / s <= max as f64)
        .unwrap_or(mag * 10.0);
    let mut ticks = Vec::new();
    let mut t = (lo / step).ceil() * step;
    while t <= hi + 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn format_tick(t: f64) -> String {
    if (t.round() - t).abs() < 1e-9 {
        format!("{}", t.round() as i64)
    } else {
        format!("{t:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ScatterPlot {
        ScatterPlot {
            title: "sizes & counts".into(),
            x_label: "k".into(),
            y_label: "size".into(),
            log_y: true,
            series: vec![
                Series {
                    name: "main".into(),
                    points: vec![(2.0, 1000.0), (3.0, 100.0), (4.0, 10.0)],
                    filled: true,
                },
                Series {
                    name: "parallel".into(),
                    points: vec![(3.0, 5.0), (4.0, 4.0), (5.0, 0.0)],
                    filled: false,
                },
            ],
        }
    }

    #[test]
    fn svg_structure() {
        let svg = demo().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("sizes &amp; counts"));
        assert!(svg.contains("main"));
        assert!(svg.contains("parallel"));
        // 5 drawable data points (one dropped by log axis) + 2 legend
        // markers.
        assert_eq!(svg.matches("<circle").count(), 7);
        assert!(svg.contains("1e1"));
    }

    #[test]
    fn empty_plot_is_valid() {
        let p = ScatterPlot {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: false,
            series: vec![],
        };
        let svg = p.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn log_axis_orders_points() {
        let svg = demo().to_svg();
        // Extract the cy of the first two data circles: y=1000 must be
        // plotted above (smaller cy) than y=100.
        let cys: Vec<f64> = svg
            .lines()
            .filter(|l| l.contains("<circle"))
            .filter_map(|l| {
                let i = l.find("cy=\"")? + 4;
                let rest = &l[i..];
                let j = rest.find('"')?;
                rest[..j].parse().ok()
            })
            .collect();
        assert!(cys[0] < cys[1], "log ordering broken: {cys:?}");
    }

    #[test]
    fn tick_helper_is_sane() {
        let t = tick_values(0.0, 10.0, 10);
        assert!(t.contains(&0.0) && t.contains(&10.0));
        assert!(t.len() <= 11);
        let t = tick_values(2.0, 36.0, 10);
        assert!(t.len() >= 4 && t.len() <= 11);
        assert_eq!(format_tick(5.0), "5");
        assert_eq!(format_tick(0.25), "0.25");
    }
}
