//! The k-clique community tree (§4, Figure 4.2).
//!
//! The paper's novel representation: one node per k-clique community, an
//! edge from each community to the unique (k−1)-clique community that
//! contains it (Theorem 1). *Main* communities are the ancestors of the
//! top community (the one at `k_max`); everything else is *parallel*.
//! Parallel chains appear as branches of the tree.

use cpm::{CommunityId, CpmResult};
use std::fmt::Write as _;

/// One node of the community tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// The community this node represents.
    pub id: CommunityId,
    /// Parent (the unique containing community at k−1); `None` at k = 2.
    pub parent: Option<CommunityId>,
    /// Children (communities at k+1 contained in this one).
    pub children: Vec<CommunityId>,
    /// Number of member ASes.
    pub size: usize,
    /// Whether this community lies on the main path.
    pub is_main: bool,
}

/// The k-clique community tree of a percolation result.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use kclique_core::CommunityTree;
///
/// let g = Graph::complete(5);
/// let result = cpm::percolate(&g);
/// let tree = CommunityTree::build(&result);
/// assert_eq!(tree.main_path().len(), 4); // k = 2, 3, 4, 5
/// assert!(tree.node(tree.main_path()[0]).unwrap().is_main);
/// ```
#[derive(Debug, Clone)]
pub struct CommunityTree {
    /// Nodes per level, mirroring `CpmResult::levels` (index 0 ⇔ k = 2).
    levels: Vec<Vec<TreeNode>>,
    main_path: Vec<CommunityId>,
}

impl CommunityTree {
    /// Builds the tree from a percolation result.
    ///
    /// The main path is the ancestor chain of the top community: the
    /// community at `k_max` (largest, lowest index on ties) and every
    /// community containing it. For an empty result the tree is empty.
    pub fn build(result: &CpmResult) -> Self {
        let mut levels: Vec<Vec<TreeNode>> = result
            .levels
            .iter()
            .map(|level| {
                level
                    .communities
                    .iter()
                    .enumerate()
                    .map(|(idx, c)| TreeNode {
                        id: CommunityId {
                            k: level.k,
                            idx: idx as u32,
                        },
                        parent: c.parent.map(|p| CommunityId {
                            k: level.k - 1,
                            idx: p,
                        }),
                        children: Vec::new(),
                        size: c.size(),
                        is_main: false,
                    })
                    .collect()
            })
            .collect();

        // Children lists.
        for li in 1..levels.len() {
            for ni in 0..levels[li].len() {
                let child = levels[li][ni].id;
                if let Some(p) = levels[li][ni].parent {
                    levels[li - 1][p.idx as usize].children.push(child);
                }
            }
        }

        // Main path: ancestors of the top community.
        let mut main_path = Vec::new();
        if let Some(top_level) = levels.last() {
            let top = top_level
                .iter()
                .max_by(|a, b| a.size.cmp(&b.size).then(b.id.idx.cmp(&a.id.idx)))
                .map(|n| n.id);
            let mut cursor = top;
            while let Some(id) = cursor {
                main_path.push(id);
                let node = &levels[(id.k - 2) as usize][id.idx as usize];
                cursor = node.parent;
            }
            main_path.reverse(); // ascending k
            for &id in &main_path {
                levels[(id.k - 2) as usize][id.idx as usize].is_main = true;
            }
        }

        CommunityTree { levels, main_path }
    }

    /// The node for `id`, if it exists.
    pub fn node(&self, id: CommunityId) -> Option<&TreeNode> {
        self.levels
            .get((id.k.checked_sub(2)?) as usize)?
            .get(id.idx as usize)
    }

    /// The main path in ascending k (one community per level).
    pub fn main_path(&self) -> &[CommunityId] {
        &self.main_path
    }

    /// Whether `id` is a main community.
    pub fn is_main(&self, id: CommunityId) -> bool {
        self.node(id).is_some_and(|n| n.is_main)
    }

    /// Iterates over every node, ascending k then index.
    pub fn iter(&self) -> impl Iterator<Item = &TreeNode> {
        self.levels.iter().flatten()
    }

    /// Total number of tree nodes (= total communities).
    pub fn len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of parallel (non-main) communities.
    pub fn parallel_count(&self) -> usize {
        self.iter().filter(|n| !n.is_main).count()
    }

    /// Levels whose community is unique (the paper: such communities
    /// contain every community of all higher k).
    pub fn unique_levels(&self) -> Vec<u32> {
        self.levels
            .iter()
            .filter(|l| l.len() == 1)
            .map(|l| l[0].id.k)
            .collect()
    }

    /// The parallel *branches*: maximal descending chains of parallel
    /// communities, returned as paths (ascending k). A branch starts at a
    /// parallel community whose parent is main (or absent) and follows
    /// single-child parallel chains; forks start new branches.
    pub fn branches(&self) -> Vec<Vec<CommunityId>> {
        let mut branches = Vec::new();
        for node in self.iter() {
            if node.is_main {
                continue;
            }
            // A branch root: parent is main or missing.
            let parent_is_main = match node.parent {
                Some(p) => self.is_main(p),
                None => true,
            };
            if !parent_is_main {
                continue;
            }
            // Walk up in k through parallel descendants, always taking
            // each node as a path node; forks spawn separate branch
            // traversals handled by recursion.
            let mut stack = vec![vec![node.id]];
            while let Some(path) = stack.pop() {
                let last = *path.last().expect("non-empty path");
                let children: Vec<CommunityId> = self
                    .node(last)
                    .map(|n| n.children.clone())
                    .unwrap_or_default();
                if children.is_empty() {
                    branches.push(path);
                } else {
                    for c in children {
                        let mut next = path.clone();
                        next.push(c);
                        stack.push(next);
                    }
                }
            }
        }
        branches
    }

    /// Histogram of branch lengths (levels a parallel chain survives
    /// before being absorbed into a main community), as sorted
    /// `(length, count)` pairs.
    ///
    /// This quantifies the paper's §5 observation that parallel
    /// communities "are rapidly incorporated into a main community with
    /// a lower k": most branches should be short.
    pub fn absorption_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist = std::collections::BTreeMap::new();
        for b in self.branches() {
            *hist.entry(b.len()).or_insert(0usize) += 1;
        }
        hist.into_iter().collect()
    }

    /// Mean branch length (`None` when the tree has no branches).
    pub fn mean_absorption_time(&self) -> Option<f64> {
        let branches = self.branches();
        if branches.is_empty() {
            return None;
        }
        Some(branches.iter().map(Vec::len).sum::<usize>() as f64 / branches.len() as f64)
    }

    /// Renders the tree as Graphviz DOT, the form of the paper's
    /// Figure 4.2 (main communities filled black). Levels with
    /// `k < min_k` are omitted, as in the paper's figure (k ≤ 5 hidden
    /// for readability).
    pub fn to_dot(&self, min_k: u32) -> String {
        let mut out = String::new();
        out.push_str("digraph kclique_tree {\n");
        out.push_str("  rankdir=BT;\n  node [shape=circle, fontsize=9];\n");
        for node in self.iter() {
            if node.id.k < min_k {
                continue;
            }
            let fill = if node.is_main {
                ", style=filled, fillcolor=black, fontcolor=white"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{}\" [label=\"{}\"{}];", node.id, node.id, fill);
        }
        for node in self.iter() {
            if node.id.k < min_k {
                continue;
            }
            if let Some(p) = node.parent {
                if p.k >= min_k {
                    let _ = writeln!(out, "  \"{}\" -> \"{}\";", node.id, p);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Graph;

    fn two_k4s_bridged() -> Graph {
        // K4 {0..3} and K4 {4..7} joined by edge (3,4).
        let mut b = asgraph::GraphBuilder::with_nodes(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
                b.add_edge(u + 4, v + 4);
            }
        }
        b.add_edge(3, 4);
        b.build()
    }

    #[test]
    fn clique_tree_is_a_path() {
        let result = cpm::percolate(&Graph::complete(6));
        let tree = CommunityTree::build(&result);
        assert_eq!(tree.len(), 5); // k = 2..=6
        assert_eq!(tree.main_path().len(), 5);
        assert_eq!(tree.parallel_count(), 0);
        assert_eq!(tree.unique_levels(), vec![2, 3, 4, 5, 6]);
        assert!(tree.branches().is_empty());
    }

    #[test]
    fn bridged_k4s_have_one_parallel_branch() {
        let result = cpm::percolate(&two_k4s_bridged());
        let tree = CommunityTree::build(&result);
        // Levels: k=2 (1 community), k=3 (2), k=4 (2).
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.main_path().len(), 3);
        assert_eq!(tree.parallel_count(), 2);
        let branches = tree.branches();
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].len(), 2); // parallel K4 at k=3 and k=4
                                          // The branch runs ascending k.
        assert!(branches[0][0].k < branches[0][1].k);
    }

    #[test]
    fn main_flags_and_lookup_consistent() {
        let result = cpm::percolate(&two_k4s_bridged());
        let tree = CommunityTree::build(&result);
        for node in tree.iter() {
            assert_eq!(tree.is_main(node.id), node.is_main);
            assert_eq!(tree.node(node.id).unwrap().id, node.id);
        }
        // Exactly one main per level.
        for k in 2..=3 {
            let mains = tree.iter().filter(|n| n.id.k == k && n.is_main).count();
            assert_eq!(mains, 1, "level {k}");
        }
    }

    #[test]
    fn children_inverse_of_parent() {
        let result = cpm::percolate(&two_k4s_bridged());
        let tree = CommunityTree::build(&result);
        for node in tree.iter() {
            for &c in &node.children {
                assert_eq!(tree.node(c).unwrap().parent, Some(node.id));
            }
            if let Some(p) = node.parent {
                assert!(tree.node(p).unwrap().children.contains(&node.id));
            }
        }
    }

    #[test]
    fn absorption_statistics() {
        let result = cpm::percolate(&two_k4s_bridged());
        let tree = CommunityTree::build(&result);
        // One branch of length 2 (the parallel K4 at k = 3 and 4).
        assert_eq!(tree.absorption_histogram(), vec![(2, 1)]);
        assert_eq!(tree.mean_absorption_time(), Some(2.0));
        // A pure clique has no branches at all.
        let clique_tree = CommunityTree::build(&cpm::percolate(&Graph::complete(4)));
        assert_eq!(clique_tree.mean_absorption_time(), None);
        assert!(clique_tree.absorption_histogram().is_empty());
    }

    #[test]
    fn empty_tree() {
        let result = cpm::percolate(&Graph::empty(3));
        let tree = CommunityTree::build(&result);
        assert!(tree.is_empty());
        assert!(tree.main_path().is_empty());
        assert!(tree.node(CommunityId { k: 2, idx: 0 }).is_none());
    }

    #[test]
    fn dot_output_shape() {
        let result = cpm::percolate(&two_k4s_bridged());
        let tree = CommunityTree::build(&result);
        let dot = tree.to_dot(2);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("k2id0"));
        assert!(dot.contains("fillcolor=black"));
        assert!(dot.contains("->"));
        // min_k filters low levels out.
        let dot4 = tree.to_dot(4);
        assert!(!dot4.contains("\"k2id0\""));
    }
}
