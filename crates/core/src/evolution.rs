//! Community evolution across topology snapshots, after Palla, Barabási
//! & Vicsek (Nature 2007, "Quantifying social group evolution").
//!
//! Given the k-clique covers of two snapshots with stable node ids
//! (see [`topology::evolve()`]), communities are matched by *relative
//! overlap* `|A ∩ B| / |A ∪ B|` and every community is assigned an
//! event: continuation (with growth or contraction), merge, split,
//! birth or death. Chaining steps yields community lifetimes — the
//! quantity Palla et al. relate to community size.

use asgraph::NodeId;
use cpm::CpmResult;

/// What happened to a community between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Matched one-to-one with a similar-size successor.
    Continued,
    /// Matched, successor at least 25 % larger.
    Grew,
    /// Matched, successor at least 25 % smaller.
    Contracted,
    /// Two or more old communities share the same best successor.
    Merged,
    /// Two or more new communities share the same best predecessor.
    Split,
    /// New community with no predecessor above the match threshold.
    Born,
    /// Old community with no successor above the match threshold.
    Died,
}

/// The match record of one old community.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Index of the community in the old cover.
    pub old: usize,
    /// Index of the best-matching new community, if any.
    pub new: Option<usize>,
    /// Relative overlap with that successor (`|A∩B| / |A∪B|`).
    pub relative_overlap: f64,
    /// The event classification.
    pub event: Event,
}

/// Summary of one evolution step at a fixed k.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionStep {
    /// Per-old-community matches.
    pub matches: Vec<Match>,
    /// Indices of new communities classified as born.
    pub born: Vec<usize>,
    /// Count of each event type, in `Event` declaration order:
    /// `[continued, grew, contracted, merged, split, born, died]`.
    pub event_counts: [usize; 7],
}

/// Matches the level-k covers of two percolation results.
///
/// `threshold` is the minimum relative overlap for a match (Palla et al.
/// use ≈ 0.1–0.5; 0.3 is a reasonable default). Node ids must be stable
/// across the snapshots.
///
/// # Panics
///
/// Panics if `threshold` is not in `(0, 1]`.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use kclique_core::evolution::{match_covers, Event};
///
/// let g0 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0)]);
/// // The triangle gained a member.
/// let g1 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (1, 3)]);
/// let r0 = cpm::percolate(&g0);
/// let r1 = cpm::percolate(&g1);
/// let step = match_covers(&r0, &r1, 3, 0.3);
/// assert_eq!(step.matches[0].event, Event::Grew);
/// ```
pub fn match_covers(old: &CpmResult, new: &CpmResult, k: u32, threshold: f64) -> EvolutionStep {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold {threshold} not in (0, 1]"
    );
    let old_cover: Vec<&[NodeId]> = old
        .level(k)
        .map(|l| l.communities.iter().map(|c| c.members.as_slice()).collect())
        .unwrap_or_default();
    let new_cover: Vec<&[NodeId]> = new
        .level(k)
        .map(|l| l.communities.iter().map(|c| c.members.as_slice()).collect())
        .unwrap_or_default();

    // Best successor per old community and best predecessor per new one.
    let mut best_new: Vec<Option<(usize, f64)>> = vec![None; old_cover.len()];
    let mut best_old: Vec<Option<(usize, f64)>> = vec![None; new_cover.len()];
    for (i, a) in old_cover.iter().enumerate() {
        for (j, b) in new_cover.iter().enumerate() {
            let o = relative_overlap(a, b);
            if o >= threshold {
                if best_new[i].is_none_or(|(_, prev)| o > prev) {
                    best_new[i] = Some((j, o));
                }
                if best_old[j].is_none_or(|(_, prev)| o > prev) {
                    best_old[j] = Some((i, o));
                }
            }
        }
    }

    // How many old communities map to each new one (merge detection).
    let mut successor_fanin = vec![0usize; new_cover.len()];
    for matched in best_new.iter().flatten() {
        successor_fanin[matched.0] += 1;
    }
    // How many new communities map back to each old one (split
    // detection).
    let mut predecessor_fanout = vec![0usize; old_cover.len()];
    for matched in best_old.iter().flatten() {
        predecessor_fanout[matched.0] += 1;
    }

    let mut counts = [0usize; 7];
    let matches: Vec<Match> = old_cover
        .iter()
        .enumerate()
        .map(|(i, a)| match best_new[i] {
            None => {
                counts[6] += 1;
                Match {
                    old: i,
                    new: None,
                    relative_overlap: 0.0,
                    event: Event::Died,
                }
            }
            Some((j, o)) => {
                let event = if successor_fanin[j] > 1 {
                    counts[3] += 1;
                    Event::Merged
                } else if predecessor_fanout[i] > 1 {
                    counts[4] += 1;
                    Event::Split
                } else {
                    let (sa, sb) = (a.len() as f64, new_cover[j].len() as f64);
                    if sb >= 1.25 * sa {
                        counts[1] += 1;
                        Event::Grew
                    } else if sb <= 0.75 * sa {
                        counts[2] += 1;
                        Event::Contracted
                    } else {
                        counts[0] += 1;
                        Event::Continued
                    }
                };
                Match {
                    old: i,
                    new: Some(j),
                    relative_overlap: o,
                    event,
                }
            }
        })
        .collect();

    let born: Vec<usize> = (0..new_cover.len())
        .filter(|&j| best_old[j].is_none())
        .collect();
    counts[5] = born.len();

    EvolutionStep {
        matches,
        born,
        event_counts: counts,
    }
}

/// Jaccard similarity of two sorted member lists.
fn relative_overlap(a: &[NodeId], b: &[NodeId]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Tracks community lifetimes at level `k` across a chain of snapshots:
/// returns, for every community born in some snapshot, how many further
/// steps it survived (by following `Continued`/`Grew`/`Contracted`
/// matches).
pub fn lifetimes(results: &[CpmResult], k: u32, threshold: f64) -> Vec<usize> {
    if results.len() < 2 {
        return Vec::new();
    }
    // alive[c] = steps survived so far, for each community index of the
    // current snapshot.
    let first = results[0]
        .level(k)
        .map(|l| l.communities.len())
        .unwrap_or(0);
    let mut alive: Vec<usize> = vec![0; first];
    let mut finished: Vec<usize> = Vec::new();

    for w in results.windows(2) {
        let step = match_covers(&w[0], &w[1], k, threshold);
        let new_len = w[1].level(k).map(|l| l.communities.len()).unwrap_or(0);
        let mut next: Vec<Option<usize>> = vec![None; new_len];
        for m in &step.matches {
            match (m.event, m.new) {
                (Event::Died | Event::Merged | Event::Split, _) | (_, None) => {
                    finished.push(alive[m.old]);
                }
                (_, Some(j)) => {
                    // Continuation: carry the age forward.
                    next[j] = Some(alive[m.old] + 1);
                }
            }
        }
        alive = next.into_iter().map(|a| a.unwrap_or(0)).collect();
    }
    finished.extend(alive);
    finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Graph;

    fn k4(base: u32) -> Vec<(NodeId, NodeId)> {
        let mut e = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                e.push((base + i, base + j));
            }
        }
        e
    }

    #[test]
    fn continuation_and_growth() {
        let g0 = Graph::from_edges(8, k4(0));
        let mut edges = k4(0);
        edges.extend([(0, 4), (1, 4), (2, 4), (3, 4)]); // K5 now
        let g1 = Graph::from_edges(8, edges);
        let step = match_covers(&cpm::percolate(&g0), &cpm::percolate(&g1), 4, 0.3);
        assert_eq!(step.matches.len(), 1);
        assert_eq!(step.matches[0].event, Event::Grew);
        assert!(step.born.is_empty());
    }

    #[test]
    fn death_and_birth() {
        let g0 = Graph::from_edges(10, k4(0));
        let g1 = Graph::from_edges(10, k4(5));
        let step = match_covers(&cpm::percolate(&g0), &cpm::percolate(&g1), 4, 0.3);
        assert_eq!(step.matches[0].event, Event::Died);
        assert_eq!(step.born.len(), 1);
        assert_eq!(step.event_counts[5], 1);
        assert_eq!(step.event_counts[6], 1);
    }

    /// Two triangles {0,1,2} and {3,4,5}.
    fn two_triangles() -> Vec<(NodeId, NodeId)> {
        vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    }

    /// The same plus a triangle chain bridging them at k = 3.
    fn bridged_triangles() -> Vec<(NodeId, NodeId)> {
        let mut e = two_triangles();
        // Triangles {1,2,3} and {2,3,4} chain the two via shared edges.
        e.extend([(1, 3), (2, 3), (2, 4)]);
        e
    }

    #[test]
    fn merge_detected() {
        let g0 = Graph::from_edges(6, two_triangles());
        let g1 = Graph::from_edges(6, bridged_triangles());
        let r1 = cpm::percolate(&g1);
        assert_eq!(r1.level(3).unwrap().communities.len(), 1);
        let step = match_covers(&cpm::percolate(&g0), &r1, 3, 0.2);
        assert!(step.matches.iter().all(|m| m.event == Event::Merged));
        assert_eq!(step.event_counts[3], 2);
    }

    #[test]
    fn split_detected() {
        let g0 = Graph::from_edges(6, bridged_triangles());
        let g1 = Graph::from_edges(6, two_triangles());
        let step = match_covers(&cpm::percolate(&g0), &cpm::percolate(&g1), 3, 0.2);
        assert_eq!(step.matches.len(), 1);
        assert_eq!(step.matches[0].event, Event::Split);
        // Neither part counts as born: both have a predecessor.
        assert!(step.born.is_empty());
    }

    #[test]
    fn relative_overlap_values() {
        assert_eq!(relative_overlap(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(relative_overlap(&[0, 1], &[2, 3]), 0.0);
        assert!((relative_overlap(&[0, 1, 2], &[1, 2, 3]) - 0.5).abs() < 1e-12);
        assert_eq!(relative_overlap(&[], &[]), 0.0);
    }

    #[test]
    fn lifetimes_across_chain() {
        // A K4 that persists for three snapshots, then disappears.
        let alive = Graph::from_edges(6, k4(0));
        let gone = Graph::from_edges(6, [(0, 1)]);
        let results = vec![
            cpm::percolate(&alive),
            cpm::percolate(&alive),
            cpm::percolate(&alive),
            cpm::percolate(&gone),
        ];
        let lt = lifetimes(&results, 4, 0.3);
        assert_eq!(lt, vec![2]); // survived two transitions, died on the third
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn bad_threshold_panics() {
        let g = Graph::complete(4);
        let r = cpm::percolate(&g);
        let _ = match_covers(&r, &r, 4, 0.0);
    }
}
