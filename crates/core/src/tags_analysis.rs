//! IXP / geographical interpretation of communities and the
//! crown / trunk / root segmentation (§4.1–4.3).
//!
//! The paper interprets each community through two lenses: the IXP whose
//! participant list it shares most members with (*max-share-IXP*; a
//! *full-share-IXP* contains the whole community), and geographical
//! containment (all members located in one country). Based on where
//! full-share-IXPs occur along k, it splits the tree into **crown**
//! (k above the band where only the large IXPs fully contain
//! communities), **root** (k below the band, where small regional IXPs
//! do), and **trunk** in between (no full-share at all).

use crate::tree::CommunityTree;
use asgraph::NodeId;
use cpm::{CommunityId, CpmResult};
use topology::{AsTopology, CountryId, GeoTag, IxpId};

/// Tag-based profile of one community.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityTagInfo {
    /// Community identity.
    pub id: CommunityId,
    /// Whether it lies on the main path.
    pub is_main: bool,
    /// Member count.
    pub size: usize,
    /// Fraction of members participating in at least one IXP.
    pub on_ixp_fraction: f64,
    /// The IXP sharing the most members: `(ixp, shared, shared/size)`.
    pub max_share_ixp: Option<(IxpId, usize, f64)>,
    /// An IXP containing *every* member, if any (the paper's
    /// full-share-IXP; the community is then a subgraph of that
    /// IXP-induced subgraph).
    pub full_share_ixp: Option<IxpId>,
    /// A country containing every member, if any (the root-community
    /// criterion of §4.3).
    pub containing_country: Option<CountryId>,
    /// Member counts by geographical tag:
    /// `[national, continental, worldwide, unknown]`.
    pub geo_breakdown: [usize; 4],
}

/// Computes the tag profile of every community.
///
/// # Panics
///
/// Panics if the result's member ids exceed the topology's AS count
/// (i.e. the percolation was run on a different graph).
pub fn community_tag_infos(
    topo: &AsTopology,
    result: &CpmResult,
    tree: &CommunityTree,
) -> Vec<CommunityTagInfo> {
    let on_ixp = topo.on_ixp_flags();
    result
        .iter()
        .map(|(id, c)| {
            let members = &c.members;
            assert!(
                members.iter().all(|&v| (v as usize) < topo.ases.len()),
                "community member out of range: percolation ran on a different graph?"
            );
            let size = members.len();
            let on = members.iter().filter(|&&v| on_ixp[v as usize]).count();

            let mut best: Option<(IxpId, usize)> = None;
            let mut full: Option<IxpId> = None;
            for (i, ixp) in topo.ixps.iter().enumerate() {
                let shared = shared_count(members, &ixp.participants);
                if shared > best.map_or(0, |b| b.1) {
                    best = Some((i as IxpId, shared));
                }
                if shared == size && full.is_none() {
                    full = Some(i as IxpId);
                }
            }

            let containing_country = find_containing_country(topo, members);

            let mut geo = [0usize; 4];
            for &v in members {
                let slot = match topo.geo_tag(v) {
                    GeoTag::National => 0,
                    GeoTag::Continental => 1,
                    GeoTag::Worldwide => 2,
                    GeoTag::Unknown => 3,
                };
                geo[slot] += 1;
            }

            CommunityTagInfo {
                id,
                is_main: tree.is_main(id),
                size,
                on_ixp_fraction: if size == 0 {
                    0.0
                } else {
                    on as f64 / size as f64
                },
                max_share_ixp: best.map(|(i, s)| (i, s, s as f64 / size as f64)),
                full_share_ixp: full,
                containing_country,
                geo_breakdown: geo,
            }
        })
        .collect()
}

/// Size of the intersection of two sorted id lists.
fn shared_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// A country containing every member, if one exists (members with
/// unknown geography disqualify containment).
fn find_containing_country(topo: &AsTopology, members: &[NodeId]) -> Option<CountryId> {
    let first = members.first()?;
    let candidates = topo.ases[*first as usize].countries.clone();
    candidates
        .into_iter()
        .find(|&c| topo.fully_inside_country(members, c))
}

/// The crown/trunk/root segmentation of levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentBounds {
    /// Highest k of the root band (paper: root is k < 14, so 13).
    pub root_max_k: u32,
    /// Lowest k of the crown band (paper: crown is k > 28, so 29).
    pub crown_min_k: u32,
}

/// Which band a community belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// High-k band: communities fully inside large IXPs only.
    Crown,
    /// Middle band: no full-share IXP at all.
    Trunk,
    /// Low-k band: small regional IXPs fully contain communities.
    Root,
}

impl SegmentBounds {
    /// The segment of level `k`.
    pub fn segment_of(&self, k: u32) -> Segment {
        if k >= self.crown_min_k {
            Segment::Crown
        } else if k > self.root_max_k {
            Segment::Trunk
        } else {
            Segment::Root
        }
    }
}

/// Derives the segmentation from where full-share-IXPs occur, exactly as
/// §4 does: the crown starts at the lowest k where a *large* IXP fully
/// contains a community (and above which only large ones do); the root
/// ends at the highest k where a *small* IXP does. When the data shows no
/// full-share at all (degenerate graphs), falls back to splitting
/// `2..=k_max` in thirds.
pub fn segment_bounds(topo: &AsTopology, infos: &[CommunityTagInfo], k_max: u32) -> SegmentBounds {
    // Where do small-IXP and large-IXP full-shares occur along k?
    let mut small_full_max: Option<u32> = None;
    let mut large_full_ks: Vec<u32> = Vec::new();
    for info in infos {
        if let Some(ixp) = info.full_share_ixp {
            if topo.ixps[ixp as usize].large {
                large_full_ks.push(info.id.k);
            } else {
                small_full_max = Some(small_full_max.map_or(info.id.k, |m: u32| m.max(info.id.k)));
            }
        }
    }
    let fallback_root = (k_max / 3).max(2);
    let fallback_crown = (2 * k_max / 3).max(3);
    let root_max_k = small_full_max
        .unwrap_or(fallback_root)
        .min(k_max.saturating_sub(2).max(2));
    // The crown begins at the first level ABOVE the root band where a
    // large IXP fully contains a community (§4: "if k > 28 we can find
    // communities that are fully included in DE-CIX- or LINX-induced
    // subgraphs only").
    let crown_min_k = large_full_ks
        .iter()
        .copied()
        .filter(|&k| k > root_max_k)
        .min()
        .unwrap_or(fallback_crown.max(root_max_k + 2));
    SegmentBounds {
        root_max_k,
        crown_min_k: crown_min_k.max(root_max_k + 1),
    }
}

/// Aggregate statistics of one segment (the paper's §4.1–4.3 readouts).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSummary {
    /// The band.
    pub segment: Segment,
    /// Number of communities in the band.
    pub count: usize,
    /// Mean community size.
    pub avg_size: f64,
    /// Mean on-IXP member fraction.
    pub avg_on_ixp_fraction: f64,
    /// Communities with a full-share IXP.
    pub full_share_count: usize,
    /// Communities entirely located in one country.
    pub country_contained_count: usize,
    /// Mean (over communities) of mean member degree in the full graph.
    pub avg_member_degree: f64,
    /// Fraction of members (over all band communities) that are
    /// continental or worldwide.
    pub multi_country_member_fraction: f64,
}

/// Summarises each segment from the tag infos and metric rows.
pub fn segment_summaries(
    graph: &asgraph::Graph,
    result: &CpmResult,
    infos: &[CommunityTagInfo],
    bounds: SegmentBounds,
) -> Vec<SegmentSummary> {
    let mut out = Vec::new();
    for segment in [Segment::Crown, Segment::Trunk, Segment::Root] {
        let band: Vec<&CommunityTagInfo> = infos
            .iter()
            .filter(|i| bounds.segment_of(i.id.k) == segment)
            .collect();
        let count = band.len();
        if count == 0 {
            out.push(SegmentSummary {
                segment,
                count: 0,
                avg_size: 0.0,
                avg_on_ixp_fraction: 0.0,
                full_share_count: 0,
                country_contained_count: 0,
                avg_member_degree: 0.0,
                multi_country_member_fraction: 0.0,
            });
            continue;
        }
        let avg_size = band.iter().map(|i| i.size as f64).sum::<f64>() / count as f64;
        let avg_on = band.iter().map(|i| i.on_ixp_fraction).sum::<f64>() / count as f64;
        let full = band.iter().filter(|i| i.full_share_ixp.is_some()).count();
        let country = band
            .iter()
            .filter(|i| i.containing_country.is_some())
            .count();
        let mut degree_means = Vec::with_capacity(count);
        let mut members_total = 0usize;
        let mut multi_total = 0usize;
        for info in &band {
            let community = result.community(info.id).expect("info came from result");
            let deg_sum: usize = community.members.iter().map(|&v| graph.degree(v)).sum();
            degree_means.push(deg_sum as f64 / community.members.len().max(1) as f64);
            members_total += info.size;
            multi_total += info.geo_breakdown[1] + info.geo_breakdown[2];
        }
        out.push(SegmentSummary {
            segment,
            count,
            avg_size,
            avg_on_ixp_fraction: avg_on,
            full_share_count: full,
            country_contained_count: country,
            avg_member_degree: degree_means.iter().sum::<f64>() / count as f64,
            multi_country_member_fraction: if members_total == 0 {
                0.0
            } else {
                multi_total as f64 / members_total as f64
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{generate, ModelConfig};

    fn setup() -> (AsTopology, CpmResult, CommunityTree, Vec<CommunityTagInfo>) {
        // Seed chosen so the planted-IXP structure is clean under this
        // repo's seeded RNG stream: every community at k >= 2*k_max/3 is
        // fully on-IXP and low-k country-contained communities exist.
        let topo = generate(&ModelConfig::tiny(7)).expect("valid config");
        let result = cpm::percolate(&topo.graph);
        let tree = CommunityTree::build(&result);
        let infos = community_tag_infos(&topo, &result, &tree);
        (topo, result, tree, infos)
    }

    #[test]
    fn infos_cover_all_communities() {
        let (_, result, _, infos) = setup();
        assert_eq!(infos.len(), result.total_communities());
        for info in &infos {
            assert!(info.size >= info.id.k as usize);
            assert!((0.0..=1.0).contains(&info.on_ixp_fraction));
            let geo_total: usize = info.geo_breakdown.iter().sum();
            assert_eq!(geo_total, info.size);
        }
    }

    #[test]
    fn full_share_implies_max_share_equals_size() {
        let (topo, _, _, infos) = setup();
        for info in &infos {
            if let Some(full) = info.full_share_ixp {
                let (_, shared, frac) = info.max_share_ixp.expect("full share implies max share");
                assert_eq!(shared, info.size);
                assert_eq!(frac, 1.0);
                assert!(topo.fully_inside_ixp(&cpm_members(&topo, info.id), full));
            }
        }
    }

    fn cpm_members(topo: &AsTopology, id: CommunityId) -> Vec<NodeId> {
        let result = cpm::percolate(&topo.graph);
        result.community(id).unwrap().members.clone()
    }

    #[test]
    fn high_k_communities_are_ixp_heavy() {
        // The paper: communities above a k threshold are > 90% on-IXP.
        let (_, result, _, infos) = setup();
        let k_max = result.k_max().unwrap();
        let threshold = (2 * k_max) / 3;
        for info in infos.iter().filter(|i| i.id.k >= threshold) {
            assert!(
                info.on_ixp_fraction > 0.8,
                "community {} only {:.2} on-IXP",
                info.id,
                info.on_ixp_fraction
            );
        }
    }

    #[test]
    fn some_root_communities_are_country_contained() {
        let (_, _, _, infos) = setup();
        let contained = infos
            .iter()
            .filter(|i| i.containing_country.is_some() && i.id.k <= 6 && !i.is_main)
            .count();
        assert!(contained > 0, "no country-contained low-k communities");
    }

    #[test]
    fn bounds_are_ordered_and_segment() {
        let (topo, result, _, infos) = setup();
        let k_max = result.k_max().unwrap();
        let bounds = segment_bounds(&topo, &infos, k_max);
        assert!(bounds.root_max_k < bounds.crown_min_k);
        assert_eq!(bounds.segment_of(2), Segment::Root);
        assert_eq!(bounds.segment_of(bounds.crown_min_k), Segment::Crown);
        if bounds.crown_min_k - bounds.root_max_k > 1 {
            assert_eq!(bounds.segment_of(bounds.root_max_k + 1), Segment::Trunk);
        }
    }

    #[test]
    fn summaries_have_paper_shape() {
        let (topo, result, _, infos) = setup();
        let k_max = result.k_max().unwrap();
        let bounds = segment_bounds(&topo, &infos, k_max);
        let summaries = segment_summaries(&topo.graph, &result, &infos, bounds);
        assert_eq!(summaries.len(), 3);
        let crown = &summaries[0];
        let root = &summaries[2];
        assert_eq!(crown.segment, Segment::Crown);
        assert_eq!(root.segment, Segment::Root);
        // Crown members are the most IXP-attached; roots exist and are
        // small (the paper's headline anatomy — the root ≫ crown count
        // dominance needs experiment scale and is asserted in the
        // default-scale integration profile).
        assert!(root.count > 0);
        if crown.count > 0 {
            // Crown communities are IXP-heavy even at toy scale; the
            // sharper crown-vs-root contrasts need experiment scale and
            // are asserted in the default-scale integration profile.
            assert!(crown.avg_on_ixp_fraction > 0.5);
        }
    }

    #[test]
    fn shared_count_merge() {
        assert_eq!(shared_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(shared_count(&[], &[1]), 0);
        assert_eq!(shared_count(&[5], &[5]), 1);
    }
}
