//! z-P functional cartography (Guimerà & Amaral, Nature 2005).
//!
//! Given a node partition, each node gets a *within-module degree
//! z-score* and a *participation coefficient* `P`, then a role from the
//! original seven-region map of the z-P plane. The ICDCS paper
//! explicitly avoids this methodology because its role boundaries "rely
//! on threshold based on heuristics"; implementing it lets the
//! `zp_analysis` experiment quantify that criticism — small threshold
//! perturbations reshuffle a large share of role assignments — while
//! still offering the tool to users who want the Moon et al. style
//! mesoscale readout.

use asgraph::{Graph, NodeId};

/// The seven Guimerà–Amaral roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// R1: ultra-peripheral (non-hub, P ≤ 0.05).
    UltraPeripheral,
    /// R2: peripheral (non-hub, P ≤ 0.62).
    Peripheral,
    /// R3: non-hub connector (P ≤ 0.80).
    Connector,
    /// R4: non-hub kinless (P > 0.80).
    Kinless,
    /// R5: provincial hub (z ≥ 2.5, P ≤ 0.30).
    ProvincialHub,
    /// R6: connector hub (P ≤ 0.75).
    ConnectorHub,
    /// R7: kinless hub (P > 0.75).
    KinlessHub,
}

/// Role thresholds; [`Thresholds::standard`] reproduces the original
/// paper's values, and perturbing them exposes the heuristic
/// sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Hub boundary on z.
    pub z_hub: f64,
    /// Non-hub P boundaries (R1/R2, R2/R3, R3/R4).
    pub p_non_hub: [f64; 3],
    /// Hub P boundaries (R5/R6, R6/R7).
    pub p_hub: [f64; 2],
}

impl Thresholds {
    /// The values of the original paper.
    pub fn standard() -> Self {
        Thresholds {
            z_hub: 2.5,
            p_non_hub: [0.05, 0.62, 0.80],
            p_hub: [0.30, 0.75],
        }
    }

    /// Every threshold scaled by `factor` (for sensitivity analysis).
    pub fn scaled(&self, factor: f64) -> Self {
        Thresholds {
            z_hub: self.z_hub * factor,
            p_non_hub: self.p_non_hub.map(|t| (t * factor).min(1.0)),
            p_hub: self.p_hub.map(|t| (t * factor).min(1.0)),
        }
    }

    /// Classifies one `(z, P)` pair.
    pub fn role(&self, z: f64, p: f64) -> Role {
        if z < self.z_hub {
            if p <= self.p_non_hub[0] {
                Role::UltraPeripheral
            } else if p <= self.p_non_hub[1] {
                Role::Peripheral
            } else if p <= self.p_non_hub[2] {
                Role::Connector
            } else {
                Role::Kinless
            }
        } else if p <= self.p_hub[0] {
            Role::ProvincialHub
        } else if p <= self.p_hub[1] {
            Role::ConnectorHub
        } else {
            Role::KinlessHub
        }
    }
}

/// Per-node cartography values.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCartography {
    /// Within-module degree z-score.
    pub z: Vec<f64>,
    /// Participation coefficient.
    pub p: Vec<f64>,
}

impl NodeCartography {
    /// Roles under the given thresholds.
    pub fn roles(&self, thresholds: &Thresholds) -> Vec<Role> {
        self.z
            .iter()
            .zip(&self.p)
            .map(|(&z, &p)| thresholds.role(z, p))
            .collect()
    }

    /// Fraction of nodes whose role changes when thresholds scale by
    /// `factor` — the quantified version of the ICDCS paper's
    /// heuristic-threshold criticism.
    pub fn role_instability(&self, factor: f64) -> f64 {
        let standard = self.roles(&Thresholds::standard());
        let scaled = self.roles(&Thresholds::standard().scaled(factor));
        if standard.is_empty() {
            return 0.0;
        }
        let changed = standard.iter().zip(&scaled).filter(|(a, b)| a != b).count();
        changed as f64 / standard.len() as f64
    }
}

/// Computes z and P for every node under `assignment` (one community id
/// per node, as produced by `baselines::louvain::louvain`).
///
/// # Panics
///
/// Panics if `assignment.len() != g.node_count()`.
pub fn cartography(g: &Graph, assignment: &[u32]) -> NodeCartography {
    assert_eq!(assignment.len(), g.node_count(), "assignment length");
    let n = g.node_count();
    let c_max = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);

    // Within-community degree of every node.
    let mut within = vec![0usize; n];
    for v in g.node_ids() {
        within[v as usize] = g
            .neighbors(v)
            .iter()
            .filter(|&&w| assignment[w as usize] == assignment[v as usize])
            .count();
    }

    // Mean and std of within-degree per community.
    let mut sum = vec![0.0f64; c_max];
    let mut sum_sq = vec![0.0f64; c_max];
    let mut count = vec![0usize; c_max];
    for v in 0..n {
        let c = assignment[v] as usize;
        sum[c] += within[v] as f64;
        sum_sq[c] += (within[v] * within[v]) as f64;
        count[c] += 1;
    }

    let z = (0..n)
        .map(|v| {
            let c = assignment[v] as usize;
            let mean = sum[c] / count[c] as f64;
            let var = sum_sq[c] / count[c] as f64 - mean * mean;
            if var <= f64::EPSILON {
                0.0
            } else {
                (within[v] as f64 - mean) / var.sqrt()
            }
        })
        .collect();

    // Participation coefficient: 1 − Σ_c (k_{v,c} / k_v)².
    let p = (0..n as NodeId)
        .map(|v| {
            let k = g.degree(v);
            if k == 0 {
                return 0.0;
            }
            let mut per_community: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for &w in g.neighbors(v) {
                *per_community.entry(assignment[w as usize]).or_insert(0) += 1;
            }
            1.0 - per_community
                .values()
                .map(|&kc| (kc as f64 / k as f64).powi(2))
                .sum::<f64>()
        })
        .collect();

    NodeCartography { z, p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::Graph;

    #[test]
    fn clique_nodes_are_ultra_peripheral() {
        // One community, everyone identical: z = 0, P = 0.
        let g = Graph::complete(5);
        let cart = cartography(&g, &[0; 5]);
        assert!(cart.z.iter().all(|&z| z == 0.0));
        assert!(cart.p.iter().all(|&p| p == 0.0));
        let roles = cart.roles(&Thresholds::standard());
        assert!(roles.iter().all(|&r| r == Role::UltraPeripheral));
    }

    #[test]
    fn bridge_node_has_high_participation() {
        // Two triangles bridged through node 6 which sits in community 0
        // but splits its edges across both.
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 0),
                (6, 3),
            ],
        );
        let assignment = [0, 0, 0, 1, 1, 1, 0];
        let cart = cartography(&g, &assignment);
        // Node 6: half its edges leave its community -> P = 0.5.
        assert!((cart.p[6] - 0.5).abs() < 1e-12);
        // Interior triangle nodes that keep all edges inside: P = 0 for
        // nodes 1, 2 (all neighbours in community 0).
        assert_eq!(cart.p[1], 0.0);
    }

    #[test]
    fn hub_gets_positive_z() {
        // Star inside one community: the hub's within-degree is far
        // above the leaves' mean.
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let cart = cartography(&g, &[0; 6]);
        assert!(cart.z[0] > 2.0, "hub z = {}", cart.z[0]);
        assert!(cart.z[1] < 0.0);
    }

    #[test]
    fn role_regions() {
        let t = Thresholds::standard();
        assert_eq!(t.role(0.0, 0.0), Role::UltraPeripheral);
        assert_eq!(t.role(0.0, 0.5), Role::Peripheral);
        assert_eq!(t.role(0.0, 0.7), Role::Connector);
        assert_eq!(t.role(0.0, 0.9), Role::Kinless);
        assert_eq!(t.role(3.0, 0.1), Role::ProvincialHub);
        assert_eq!(t.role(3.0, 0.5), Role::ConnectorHub);
        assert_eq!(t.role(3.0, 0.9), Role::KinlessHub);
    }

    #[test]
    fn instability_is_zero_for_unit_factor() {
        let g = Graph::complete(4);
        let cart = cartography(&g, &[0; 4]);
        assert_eq!(cart.role_instability(1.0), 0.0);
    }

    #[test]
    fn instability_detects_threshold_sensitivity() {
        // Nodes parked just above the R1/R2 boundary flip when the
        // boundary moves: P of boundary nodes ≈ 0.05..0.12 region.
        let topo = topology::generate(&topology::ModelConfig::tiny(42)).unwrap();
        let partition = baselines::louvain::louvain(&topo.graph);
        let cart = cartography(&topo.graph, &partition.community);
        let wiggle = cart.role_instability(1.1);
        assert!(
            wiggle > 0.0,
            "a 10% threshold change should reclassify someone"
        );
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn wrong_length_panics() {
        let g = Graph::complete(3);
        let _ = cartography(&g, &[0, 0]);
    }
}
