//! One-call pipeline: generate → percolate → tree → tags → segments.
//!
//! The experiment binaries and examples all start the same way; this
//! module packages that startup so downstream code can focus on its own
//! readout.

use crate::metrics::{metric_rows, MetricRow};
use crate::tags_analysis::{community_tag_infos, segment_bounds, CommunityTagInfo, SegmentBounds};
use crate::tree::CommunityTree;
use cpm::CpmResult;
use topology::{generate, AsTopology, InvalidConfig, ModelConfig};

/// Everything the paper's analysis needs, bundled.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The generated topology with its side datasets.
    pub topo: AsTopology,
    /// The percolation result (all k levels).
    pub result: CpmResult,
    /// The community tree with main/parallel classification.
    pub tree: CommunityTree,
    /// Structural metric rows (Figures 4.3 / 4.4 data).
    pub rows: Vec<MetricRow>,
    /// Tag profiles (IXP / geography) of every community.
    pub infos: Vec<CommunityTagInfo>,
    /// Crown / trunk / root segmentation derived from the tag profiles.
    pub bounds: SegmentBounds,
}

/// Runs the full pipeline for `config`, using `threads` workers for the
/// parallel CPM phases.
///
/// # Errors
///
/// Returns [`InvalidConfig`] if the configuration fails validation.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), topology::InvalidConfig> {
/// use kclique_core::analyze;
/// use topology::ModelConfig;
///
/// let analysis = analyze(&ModelConfig::tiny(42), 2)?;
/// assert!(analysis.result.k_max().unwrap() >= 8);
/// assert!(!analysis.tree.main_path().is_empty());
/// # Ok(())
/// # }
/// ```
pub fn analyze(config: &ModelConfig, threads: usize) -> Result<Analysis, InvalidConfig> {
    let topo = generate(config)?;
    let result = cpm::parallel::percolate_parallel(&topo.graph, threads);
    Ok(analyze_topology(topo, result))
}

/// Builds the analysis bundle from an existing topology and percolation
/// result (use this to avoid re-running CPM).
pub fn analyze_topology(topo: AsTopology, result: CpmResult) -> Analysis {
    let tree = CommunityTree::build(&result);
    let rows = metric_rows(&topo.graph, &result, &tree);
    let infos = community_tag_infos(&topo, &result, &tree);
    let k_max = result.k_max().unwrap_or(2);
    let bounds = segment_bounds(&topo, &infos, k_max);
    Analysis {
        topo,
        result,
        tree,
        rows,
        infos,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_is_internally_consistent() {
        let analysis = analyze(&ModelConfig::tiny(42), 2).unwrap();
        assert_eq!(analysis.rows.len(), analysis.result.total_communities());
        assert_eq!(analysis.infos.len(), analysis.result.total_communities());
        assert_eq!(
            analysis.tree.main_path().len(),
            analysis.result.levels.len()
        );
        assert!(analysis.bounds.root_max_k < analysis.bounds.crown_min_k);
    }

    #[test]
    fn threads_do_not_change_the_analysis() {
        let a1 = analyze(&ModelConfig::tiny(5), 1).unwrap();
        let a4 = analyze(&ModelConfig::tiny(5), 4).unwrap();
        assert_eq!(a1.result.total_communities(), a4.result.total_communities());
        assert_eq!(a1.tree.main_path(), a4.tree.main_path());
        assert_eq!(a1.bounds, a4.bounds);
    }
}
