//! Analysis layer of the reproduction: the k-clique community tree and
//! the paper's §4 interpretation machinery.
//!
//! Build a [`CommunityTree`] from a [`cpm::CpmResult`] to get the paper's
//! Figure 4.2 representation — main communities (the ancestors of the
//! top-k community) versus parallel communities (branches). Then:
//!
//! - [`metric_rows`] computes the size / link-density / average-ODF
//!   series of Figures 4.3 and 4.4;
//! - [`overlap_report`] reproduces the same-k overlap-fraction analysis
//!   (parallel↔main mean ≈ 0.7 in the paper, parallel↔parallel too
//!   variable to summarise);
//! - [`community_tag_infos`] joins communities with the IXP and
//!   geographical datasets (max-share-IXP, full-share-IXP, country
//!   containment), and [`segment_bounds`] / [`segment_summaries`] derive
//!   the crown / trunk / root segmentation from where full-share-IXPs
//!   occur along k, as §4 does;
//! - [`report::Table`] renders the experiment tables.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), topology::InvalidConfig> {
//! use kclique_core::{CommunityTree, metric_rows};
//! use topology::{generate, ModelConfig};
//!
//! let topo = generate(&ModelConfig::tiny(42))?;
//! let result = cpm::percolate(&topo.graph);
//! let tree = CommunityTree::build(&result);
//! let rows = metric_rows(&topo.graph, &result, &tree);
//! assert_eq!(rows.len(), result.total_communities());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cartography;
mod distributions;
pub mod evolution;
mod metrics;
mod overlap;
mod pipeline;
pub mod report;
pub mod svg;
mod tags_analysis;
mod tree;

pub use distributions::{all_cover_distributions, cover_distributions, CoverDistributions};
pub use metrics::{metric_rows, split_series, MetricRow};
pub use overlap::{overlap_report, KOverlapStats, OverlapReport};
pub use pipeline::{analyze, analyze_topology, Analysis};
pub use tags_analysis::{
    community_tag_infos, segment_bounds, segment_summaries, CommunityTagInfo, Segment,
    SegmentBounds, SegmentSummary,
};
pub use tree::{CommunityTree, TreeNode};
