//! Plain-text table rendering for the experiment binaries.
//!
//! Every figure/table reproduction prints an aligned text table (plus
//! TSV for machine consumption); this module is the tiny layout engine
//! behind them.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use kclique_core::report::Table;
///
/// let mut t = Table::new(vec!["k", "communities"]);
/// t.row(vec!["2".into(), "1".into()]);
/// t.row(vec!["3".into(), "208".into()]);
/// let text = t.render();
/// assert!(text.contains("communities"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a header separator, and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".-%eE+".contains(c))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as tab-separated values (headers first).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals (the precision the paper reports).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Numeric column right-aligned: "1" ends at same column as "12345".
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn tsv_output() {
        let mut t = Table::new(vec!["k", "n"]);
        t.row(vec!["2".into(), "1".into()]);
        assert_eq!(t.to_tsv(), "k\tn\n2\t1\n");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn number_formats() {
        assert_eq!(f3(0.70449), "0.704");
        assert_eq!(pct(0.891), "89.1%");
    }
}
