//! Implementation of the `kclique-cli` command-line tool.
//!
//! The binary makes the library usable without writing Rust: feed it any
//! edge list (the format of the public AS-link datasets) and it runs
//! clique percolation, prints community covers, emits the community tree
//! as Graphviz, reports graph statistics, or generates/analyses whole
//! synthetic datasets.
//!
//! ```text
//! kclique-cli communities --input topology.edges --k 4
//! kclique-cli communities --input topology.edges --all-k
//! kclique-cli tree        --input topology.edges --min-k 6
//! kclique-cli stats       --input topology.edges
//! kclique-cli generate    --scale small --seed 7 --out dataset/
//! kclique-cli analyze     --dataset dataset/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kclique_core::report::{f3, pct, Table};
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run CPM and print communities at one `k` or all of them.
    Communities {
        /// Edge-list file.
        input: PathBuf,
        /// Specific k (mutually exclusive with `all_k`).
        k: Option<u32>,
        /// Print every level.
        all_k: bool,
        /// Set kernel for enumeration and overlap counting.
        kernel: cliques::Kernel,
        /// Worker-count policy for the parallel pipeline.
        threads: exec::Threads,
        /// Deprecated `--sweep` value, warned about and ignored.
        deprecated_sweep: Option<String>,
    },
    /// Print the community tree (Graphviz DOT) to stdout.
    Tree {
        /// Edge-list file.
        input: PathBuf,
        /// Hide levels below this k.
        min_k: u32,
    },
    /// Print graph statistics.
    Stats {
        /// Edge-list file.
        input: PathBuf,
    },
    /// Generate a synthetic dataset into a directory.
    Generate {
        /// Preset: tiny | small | default | full.
        scale: String,
        /// Generator seed.
        seed: u64,
        /// Output directory.
        out: PathBuf,
    },
    /// Load a dataset directory and run the full tag analysis.
    Analyze {
        /// Directory written by `generate` (or hand-authored).
        dataset: PathBuf,
    },
    /// Compare baseline methods (k-core, k-dense, Louvain) on an edge
    /// list.
    Baselines {
        /// Edge-list file.
        input: PathBuf,
    },
    /// Streaming CPM: percolate without materialising the clique set or
    /// overlap graph (optionally replaying an on-disk clique log).
    StreamPercolate {
        /// Edge-list file (mutually exclusive with `log`).
        input: Option<PathBuf>,
        /// Clique-log file written by `clique-log build`.
        log: Option<PathBuf>,
        /// Specific k (mutually exclusive with `all_k`).
        k: Option<u32>,
        /// Sweep every level and print the summary table.
        all_k: bool,
        /// Use the O(nodes) last-clique-seen approximation.
        approx: bool,
        /// Set kernel for the per-replay clique enumeration (live
        /// `--input` sources only; a log replay does no enumeration).
        kernel: cliques::Kernel,
        /// Worker-count policy for the multi-k wave sweep.
        threads: exec::Threads,
        /// Deprecated `--sweep` value, warned about and ignored.
        deprecated_sweep: Option<String>,
    },
    /// Enumerate maximal cliques once and write a replayable clique log.
    CliqueLogBuild {
        /// Edge-list file.
        input: PathBuf,
        /// Output clique-log file.
        out: PathBuf,
        /// Set kernel for the single enumeration pass.
        kernel: cliques::Kernel,
    },
    /// Print a clique log's header summary.
    CliqueLogInfo {
        /// Clique-log file.
        log: PathBuf,
    },
    /// Degree-preserving rewiring: write a null-model edge list.
    Rewire {
        /// Edge-list file.
        input: PathBuf,
        /// Output edge-list file.
        output: PathBuf,
        /// Swap attempts (default 10 × edges).
        swaps: Option<usize>,
        /// RNG seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
kclique-cli — k-clique communities for AS-level topologies

USAGE:
  kclique-cli communities --input <edges> (--k <n> | --all-k) [--kernel auto|bitset|merge]
                          [--threads <n>|auto]
  kclique-cli tree        --input <edges> [--min-k <n>]
  kclique-cli stats       --input <edges>
  kclique-cli generate    [--scale tiny|small|medium|default|full] [--seed <u64>] --out <dir>
  kclique-cli analyze     --dataset <dir>
  kclique-cli baselines   --input <edges>
  kclique-cli rewire      --input <edges> --output <edges> [--swaps <n>] [--seed <u64>]
  kclique-cli stream-percolate (--input <edges> | --log <file>) (--k <n> | --all-k) [--approx]
                          [--kernel auto|bitset|merge] [--threads <n>|auto]
  kclique-cli clique-log  build --input <edges> --out <file> [--kernel auto|bitset|merge]
  kclique-cli clique-log  info  --log <file>
  kclique-cli help

The set kernel (--kernel) picks the Bron–Kerbosch / overlap-counting
representation: `merge` walks sorted adjacency lists, `bitset` uses dense
word-wise bitmaps, and `auto` (default) chooses per subproblem. Every
kernel produces identical output; only the speed differs.

The worker count (--threads) sizes the persistent thread pool: a fixed
`<n>` forces that many workers, `auto` (default) scales with the input
and falls back to sequential when the work would not amortise the
fan-out. Output is bit-identical at every thread count.

The --sweep flag of previous releases is deprecated: the fused sweep is
now the only pipeline. The flag is accepted and ignored, with a warning.
";

impl Command {
    /// Parses the argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands, missing
    /// values, or malformed numbers.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, String> {
        let mut it = args.into_iter();
        let sub = it.next().unwrap_or_else(|| "help".to_owned());
        let rest: Vec<String> = it.collect();
        let get = |flag: &str| -> Option<String> {
            rest.iter()
                .position(|a| a == flag)
                .and_then(|i| rest.get(i + 1).cloned())
        };
        let has = |flag: &str| rest.iter().any(|a| a == flag);
        let required = |flag: &str| -> Result<String, String> {
            get(flag).ok_or_else(|| format!("missing required flag {flag}"))
        };
        let kernel = || -> Result<cliques::Kernel, String> {
            match get("--kernel") {
                Some(v) => v.parse().map_err(|e: String| format!("bad --kernel: {e}")),
                None => Ok(cliques::Kernel::Auto),
            }
        };
        let threads = || -> Result<exec::Threads, String> {
            match get("--threads") {
                Some(v) => v.parse().map_err(|e: String| format!("bad --threads: {e}")),
                None => Ok(exec::Threads::Auto),
            }
        };
        // Deprecated, value-carrying, ignored: warn at run time so old
        // scripts keep working for one more release.
        let deprecated_sweep = || get("--sweep");

        match sub.as_str() {
            "communities" => {
                let input = PathBuf::from(required("--input")?);
                let k = match get("--k") {
                    Some(v) => Some(v.parse::<u32>().map_err(|e| format!("bad --k: {e}"))?),
                    None => None,
                };
                let all_k = has("--all-k");
                if k.is_none() && !all_k {
                    return Err("communities needs --k <n> or --all-k".to_owned());
                }
                if k.is_some() && all_k {
                    return Err("--k and --all-k are mutually exclusive".to_owned());
                }
                if let Some(k) = k {
                    if k < 2 {
                        return Err("--k must be at least 2".to_owned());
                    }
                }
                Ok(Command::Communities {
                    input,
                    k,
                    all_k,
                    kernel: kernel()?,
                    threads: threads()?,
                    deprecated_sweep: deprecated_sweep(),
                })
            }
            "tree" => Ok(Command::Tree {
                input: PathBuf::from(required("--input")?),
                min_k: match get("--min-k") {
                    Some(v) => v.parse().map_err(|e| format!("bad --min-k: {e}"))?,
                    None => 2,
                },
            }),
            "stats" => Ok(Command::Stats {
                input: PathBuf::from(required("--input")?),
            }),
            "generate" => {
                let scale = get("--scale").unwrap_or_else(|| "small".to_owned());
                if !["tiny", "small", "medium", "default", "full"].contains(&scale.as_str()) {
                    return Err(format!("unknown scale {scale:?}"));
                }
                Ok(Command::Generate {
                    scale,
                    seed: match get("--seed") {
                        Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
                        None => 42,
                    },
                    out: PathBuf::from(required("--out")?),
                })
            }
            "analyze" => Ok(Command::Analyze {
                dataset: PathBuf::from(required("--dataset")?),
            }),
            "baselines" => Ok(Command::Baselines {
                input: PathBuf::from(required("--input")?),
            }),
            "rewire" => Ok(Command::Rewire {
                input: PathBuf::from(required("--input")?),
                output: PathBuf::from(required("--output")?),
                swaps: match get("--swaps") {
                    Some(v) => Some(v.parse().map_err(|e| format!("bad --swaps: {e}"))?),
                    None => None,
                },
                seed: match get("--seed") {
                    Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
                    None => 42,
                },
            }),
            "stream-percolate" => {
                let input = get("--input").map(PathBuf::from);
                let log = get("--log").map(PathBuf::from);
                match (&input, &log) {
                    (None, None) => {
                        return Err(
                            "stream-percolate needs --input <edges> or --log <file>".to_owned()
                        )
                    }
                    (Some(_), Some(_)) => {
                        return Err("--input and --log are mutually exclusive".to_owned())
                    }
                    _ => {}
                }
                let k = match get("--k") {
                    Some(v) => Some(v.parse::<u32>().map_err(|e| format!("bad --k: {e}"))?),
                    None => None,
                };
                let all_k = has("--all-k");
                if k.is_none() && !all_k {
                    return Err("stream-percolate needs --k <n> or --all-k".to_owned());
                }
                if k.is_some() && all_k {
                    return Err("--k and --all-k are mutually exclusive".to_owned());
                }
                if let Some(k) = k {
                    if k < 2 {
                        return Err("--k must be at least 2".to_owned());
                    }
                }
                let approx = has("--approx");
                if approx && all_k {
                    return Err("--approx only applies to a single --k pass".to_owned());
                }
                Ok(Command::StreamPercolate {
                    input,
                    log,
                    k,
                    all_k,
                    approx,
                    kernel: kernel()?,
                    threads: threads()?,
                    deprecated_sweep: deprecated_sweep(),
                })
            }
            "clique-log" => match rest.first().map(String::as_str) {
                Some("build") => Ok(Command::CliqueLogBuild {
                    input: PathBuf::from(required("--input")?),
                    out: PathBuf::from(required("--out")?),
                    kernel: kernel()?,
                }),
                Some("info") => Ok(Command::CliqueLogInfo {
                    log: PathBuf::from(required("--log")?),
                }),
                _ => Err("clique-log needs a subcommand: build | info".to_owned()),
            },
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(format!("unknown command {other:?}")),
        }
    }

    /// Executes the command, writing human output to stdout.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for stderr on any failure.
    pub fn run(&self) -> Result<(), String> {
        match self {
            Command::Help => {
                print!("{USAGE}");
                Ok(())
            }
            Command::Communities {
                input,
                k,
                all_k,
                kernel,
                threads,
                deprecated_sweep,
            } => {
                warn_deprecated_sweep(deprecated_sweep);
                let g = load_graph(input)?;
                if *all_k {
                    let result =
                        cpm::parallel::percolate_parallel_with_kernel(&g, *threads, *kernel);
                    let mut table = Table::new(vec!["k", "communities", "largest"]);
                    for level in &result.levels {
                        let largest = level
                            .communities
                            .iter()
                            .map(cpm::Community::size)
                            .max()
                            .unwrap_or(0);
                        table.row(vec![
                            level.k.to_string(),
                            level.communities.len().to_string(),
                            largest.to_string(),
                        ]);
                    }
                    print!("{}", table.render());
                } else {
                    let k = k.expect("parse guarantees k for non-all-k");
                    let comms = cpm::percolate_at_with_kernel(&g, k as usize, *kernel);
                    println!("# {} {k}-clique communities", comms.len());
                    for (i, c) in comms.iter().enumerate() {
                        let ids: Vec<String> = c.iter().map(ToString::to_string).collect();
                        println!("{i}\t{}", ids.join(" "));
                    }
                }
                Ok(())
            }
            Command::Tree { input, min_k } => {
                let g = load_graph(input)?;
                let result = cpm::percolate(&g);
                let tree = kclique_core::CommunityTree::build(&result);
                print!("{}", tree.to_dot(*min_k));
                Ok(())
            }
            Command::Stats { input } => {
                let g = load_graph(input)?;
                let deg = g.degrees();
                let cliques = cliques::max_cliques(&g);
                let cores = baselines::kcore::decompose(&g);
                let mut table = Table::new(vec!["statistic", "value"]);
                table.row(vec!["nodes".into(), g.node_count().to_string()]);
                table.row(vec!["edges".into(), g.edge_count().to_string()]);
                table.row(vec!["mean degree".into(), f3(deg.mean)]);
                table.row(vec!["max degree".into(), deg.max.to_string()]);
                table.row(vec![
                    "connected components".into(),
                    asgraph::components::connected_components(&g)
                        .count()
                        .to_string(),
                ]);
                table.row(vec!["degeneracy".into(), cores.degeneracy().to_string()]);
                table.row(vec!["maximal cliques".into(), cliques.len().to_string()]);
                table.row(vec![
                    "largest clique".into(),
                    cliques.max_size().to_string(),
                ]);
                table.row(vec![
                    "triangles".into(),
                    asgraph::metrics::triangle_count(&g).to_string(),
                ]);
                table.row(vec![
                    "avg clustering".into(),
                    f3(asgraph::stats::average_clustering(&g)),
                ]);
                if let Some(alpha) = asgraph::stats::power_law_alpha(&g, 6) {
                    table.row(vec!["power-law alpha (k_min=6)".into(), f3(alpha)]);
                }
                if let Some(r) = asgraph::stats::degree_assortativity(&g) {
                    table.row(vec!["degree assortativity".into(), f3(r)]);
                }
                print!("{}", table.render());
                Ok(())
            }
            Command::Generate { scale, seed, out } => {
                let config = match scale.as_str() {
                    "tiny" => topology::ModelConfig::tiny(*seed),
                    "medium" => topology::ModelConfig::medium(*seed),
                    "default" => topology::ModelConfig::default_scale(*seed),
                    "full" => topology::ModelConfig::full_scale(*seed),
                    _ => topology::ModelConfig::small(*seed),
                };
                let topo = topology::generate(&config).map_err(|e| e.to_string())?;
                topology::io::save_dataset(&topo, out).map_err(|e| e.to_string())?;
                println!(
                    "wrote {} ASes / {} links / {} IXPs to {}",
                    topo.graph.node_count(),
                    topo.graph.edge_count(),
                    topo.ixps.len(),
                    out.display()
                );
                Ok(())
            }
            Command::Analyze { dataset } => {
                let topo = topology::io::load_dataset(dataset).map_err(|e| e.to_string())?;
                let result = cpm::percolate(&topo.graph);
                let analysis = kclique_core::analyze_topology(topo, result);
                let s = analysis.topo.tag_summary();
                println!(
                    "{} ASes, {} links | on-IXP {} | national {} continental {} worldwide {} unknown {}",
                    analysis.topo.graph.node_count(),
                    analysis.topo.graph.edge_count(),
                    s.on_ixp,
                    s.national,
                    s.continental,
                    s.worldwide,
                    s.unknown
                );
                println!(
                    "{} communities, k_max {}, bands: root <= {}, crown >= {}",
                    analysis.result.total_communities(),
                    analysis.result.k_max().unwrap_or(0),
                    analysis.bounds.root_max_k,
                    analysis.bounds.crown_min_k
                );
                let mut table = Table::new(vec!["k", "communities", "mean on-IXP"]);
                for level in &analysis.result.levels {
                    let fracs: Vec<f64> = analysis
                        .infos
                        .iter()
                        .filter(|i| i.id.k == level.k)
                        .map(|i| i.on_ixp_fraction)
                        .collect();
                    let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
                    table.row(vec![
                        level.k.to_string(),
                        level.communities.len().to_string(),
                        pct(mean),
                    ]);
                }
                print!("{}", table.render());
                Ok(())
            }
            Command::Baselines { input } => {
                let g = load_graph(input)?;
                let cores = baselines::kcore::decompose(&g);
                let partition = baselines::louvain::louvain(&g);
                let mut table = Table::new(vec!["method", "result"]);
                table.row(vec![
                    "k-core".into(),
                    format!(
                        "degeneracy {}, top core has {} nodes",
                        cores.degeneracy(),
                        cores.core(cores.degeneracy()).len()
                    ),
                ]);
                let d3 = baselines::kdense::communities(&g, 3);
                table.row(vec![
                    "k-dense (k=3)".into(),
                    format!(
                        "{} communities covering {} nodes",
                        d3.len(),
                        d3.iter().map(Vec::len).sum::<usize>()
                    ),
                ]);
                table.row(vec![
                    "Louvain".into(),
                    format!(
                        "{} communities, modularity {}",
                        partition.community_count,
                        f3(partition.modularity)
                    ),
                ]);
                let cpm3 = cpm::percolate_at(&g, 3);
                table.row(vec![
                    "k-clique (k=3)".into(),
                    format!(
                        "{} communities covering {} memberships",
                        cpm3.len(),
                        cpm3.iter().map(Vec::len).sum::<usize>()
                    ),
                ]);
                print!("{}", table.render());
                Ok(())
            }
            Command::StreamPercolate {
                input,
                log,
                k,
                all_k,
                approx,
                kernel,
                threads,
                deprecated_sweep,
            } => {
                warn_deprecated_sweep(deprecated_sweep);
                // Both source kinds funnel through the same dyn-dispatch
                // path; the graph (if any) must outlive the source.
                let graph;
                let mut graph_src;
                let mut log_src;
                let source: &mut dyn cpm_stream::CliqueSource = if let Some(input) = input {
                    graph = load_graph(input)?;
                    graph_src = cpm_stream::GraphSource::with_kernel(&graph, *kernel);
                    &mut graph_src
                } else {
                    let log = log.as_ref().expect("parse guarantees input xor log");
                    log_src = cpm_stream::LogSource::open(log)
                        .map_err(|e| format!("{}: {e}", log.display()))?;
                    &mut log_src
                };
                if *all_k {
                    let result = cpm_stream::stream_percolate_parallel(source, *threads)
                        .map_err(|e| e.to_string())?;
                    let mut table = Table::new(vec!["k", "communities", "largest"]);
                    for level in &result.levels {
                        let largest = level
                            .communities
                            .iter()
                            .map(cpm::Community::size)
                            .max()
                            .unwrap_or(0);
                        table.row(vec![
                            level.k.to_string(),
                            level.communities.len().to_string(),
                            largest.to_string(),
                        ]);
                    }
                    print!("{}", table.render());
                } else {
                    let k = k.expect("parse guarantees k for non-all-k") as usize;
                    let mode = if *approx {
                        cpm_stream::Mode::LastSeen
                    } else {
                        cpm_stream::Mode::Exact
                    };
                    let mut p =
                        cpm_stream::StreamPercolator::with_mode(source.node_count(), k, mode);
                    source
                        .replay(&mut |clique| p.push(clique))
                        .map_err(|e| e.to_string())?;
                    let mut comms: Vec<Vec<asgraph::NodeId>> =
                        p.finish().into_iter().map(|c| c.members).collect();
                    comms.sort_unstable();
                    let tag = if *approx { " (approx)" } else { "" };
                    println!("# {} {k}-clique communities{tag}", comms.len());
                    for (i, c) in comms.iter().enumerate() {
                        let ids: Vec<String> = c.iter().map(ToString::to_string).collect();
                        println!("{i}\t{}", ids.join(" "));
                    }
                }
                Ok(())
            }
            Command::CliqueLogBuild { input, out, kernel } => {
                let g = load_graph(input)?;
                let info = cpm_stream::write_clique_log_with(&g, *kernel, out)
                    .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
                println!(
                    "wrote {} cliques over {} nodes (largest {}) to {}",
                    info.clique_count,
                    info.node_count,
                    info.max_size,
                    out.display()
                );
                Ok(())
            }
            Command::CliqueLogInfo { log } => {
                let reader = cpm_stream::CliqueLogReader::open(log)
                    .map_err(|e| format!("{}: {e}", log.display()))?;
                let info = reader.info();
                let mut table = Table::new(vec!["field", "value"]);
                table.row(vec!["nodes".into(), info.node_count.to_string()]);
                table.row(vec!["cliques".into(), info.clique_count.to_string()]);
                table.row(vec!["largest clique".into(), info.max_size.to_string()]);
                if let Ok(meta) = std::fs::metadata(log) {
                    table.row(vec!["file bytes".into(), meta.len().to_string()]);
                }
                print!("{}", table.render());
                Ok(())
            }
            Command::Rewire {
                input,
                output,
                swaps,
                seed,
            } => {
                use rand::SeedableRng;
                let g = load_graph(input)?;
                let attempts = swaps.unwrap_or(10 * g.edge_count());
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                let (h, report) = asgraph::rewire::rewire(&g, attempts, &mut rng);
                std::fs::write(output, asgraph::io::to_edge_list_string(&h))
                    .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
                println!(
                    "rewired {}: {}/{} swaps succeeded, wrote {}",
                    input.display(),
                    report.successes,
                    report.attempts,
                    output.display()
                );
                Ok(())
            }
        }
    }
}

fn warn_deprecated_sweep(value: &Option<String>) {
    if let Some(v) = value {
        eprintln!(
            "warning: --sweep {v} is deprecated and ignored; the fused sweep is the only pipeline"
        );
    }
}

fn load_graph(path: &PathBuf) -> Result<asgraph::Graph, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    asgraph::io::parse_edge_list(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_communities() {
        let c = parse(&["communities", "--input", "g.txt", "--k", "4"]).unwrap();
        assert_eq!(
            c,
            Command::Communities {
                input: PathBuf::from("g.txt"),
                k: Some(4),
                all_k: false,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deprecated_sweep: None,
            }
        );
        let c = parse(&["communities", "--input", "g.txt", "--all-k"]).unwrap();
        assert!(matches!(c, Command::Communities { all_k: true, .. }));
    }

    #[test]
    fn parses_kernel_flag() {
        for (name, want) in [
            ("auto", cliques::Kernel::Auto),
            ("bitset", cliques::Kernel::Bitset),
            ("merge", cliques::Kernel::Merge),
        ] {
            let c = parse(&[
                "communities",
                "--input",
                "g.txt",
                "--k",
                "3",
                "--kernel",
                name,
            ])
            .unwrap();
            assert!(matches!(c, Command::Communities { kernel, .. } if kernel == want));
        }
        assert!(parse(&[
            "communities",
            "--input",
            "g.txt",
            "--k",
            "3",
            "--kernel",
            "quantum"
        ])
        .is_err());
    }

    #[test]
    fn parses_threads_flag() {
        for (name, want) in [
            ("auto", exec::Threads::Auto),
            ("1", exec::Threads::Fixed(1)),
            ("4", exec::Threads::Fixed(4)),
        ] {
            let c = parse(&[
                "communities",
                "--input",
                "g.txt",
                "--k",
                "3",
                "--threads",
                name,
            ])
            .unwrap();
            assert!(matches!(c, Command::Communities { threads, .. } if threads == want));
            let c = parse(&[
                "stream-percolate",
                "--input",
                "g.txt",
                "--all-k",
                "--threads",
                name,
            ])
            .unwrap();
            assert!(matches!(c, Command::StreamPercolate { threads, .. } if threads == want));
        }
        for bad in ["0", "-1", "many"] {
            assert!(parse(&[
                "communities",
                "--input",
                "g.txt",
                "--k",
                "3",
                "--threads",
                bad
            ])
            .is_err());
        }
    }

    #[test]
    fn deprecated_sweep_flag_is_accepted_and_recorded() {
        // Any value parses — the flag is a warned-about no-op now.
        for v in ["fused", "legacy", "quantum"] {
            let c = parse(&["communities", "--input", "g.txt", "--k", "3", "--sweep", v]).unwrap();
            assert!(
                matches!(c, Command::Communities { ref deprecated_sweep, .. }
                    if deprecated_sweep.as_deref() == Some(v))
            );
        }
        let c = parse(&["communities", "--input", "g.txt", "--k", "3"]).unwrap();
        assert!(matches!(
            c,
            Command::Communities {
                deprecated_sweep: None,
                ..
            }
        ));
    }

    #[test]
    fn communities_validation() {
        assert!(parse(&["communities", "--input", "g.txt"]).is_err());
        assert!(parse(&["communities", "--input", "g.txt", "--k", "1"]).is_err());
        assert!(parse(&["communities", "--input", "g.txt", "--k", "3", "--all-k"]).is_err());
        assert!(parse(&["communities", "--k", "3"]).is_err());
    }

    #[test]
    fn parses_tree_defaults() {
        let c = parse(&["tree", "--input", "g.txt"]).unwrap();
        assert_eq!(
            c,
            Command::Tree {
                input: PathBuf::from("g.txt"),
                min_k: 2
            }
        );
    }

    #[test]
    fn parses_generate() {
        let c = parse(&["generate", "--scale", "tiny", "--out", "d"]).unwrap();
        assert_eq!(
            c,
            Command::Generate {
                scale: "tiny".into(),
                seed: 42,
                out: PathBuf::from("d")
            }
        );
        assert!(parse(&["generate", "--scale", "huge", "--out", "d"]).is_err());
        assert!(parse(&["generate", "--scale", "tiny"]).is_err());
    }

    #[test]
    fn parses_rewire() {
        let c = parse(&["rewire", "--input", "a", "--output", "b", "--swaps", "99"]).unwrap();
        assert_eq!(
            c,
            Command::Rewire {
                input: PathBuf::from("a"),
                output: PathBuf::from("b"),
                swaps: Some(99),
                seed: 42
            }
        );
        assert!(parse(&["rewire", "--input", "a"]).is_err());
    }

    #[test]
    fn parses_stream_percolate() {
        let c = parse(&["stream-percolate", "--input", "g.txt", "--k", "4"]).unwrap();
        assert_eq!(
            c,
            Command::StreamPercolate {
                input: Some(PathBuf::from("g.txt")),
                log: None,
                k: Some(4),
                all_k: false,
                approx: false,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deprecated_sweep: None,
            }
        );
        let c = parse(&["stream-percolate", "--log", "c.log", "--all-k"]).unwrap();
        assert!(matches!(
            c,
            Command::StreamPercolate {
                input: None,
                all_k: true,
                ..
            }
        ));
        let c = parse(&[
            "stream-percolate",
            "--input",
            "g.txt",
            "--k",
            "3",
            "--approx",
        ])
        .unwrap();
        assert!(matches!(c, Command::StreamPercolate { approx: true, .. }));
    }

    #[test]
    fn stream_percolate_validation() {
        // Needs exactly one source and exactly one of --k / --all-k.
        assert!(parse(&["stream-percolate", "--k", "3"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--log", "b", "--k", "3"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--k", "3", "--all-k"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--k", "1"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--all-k", "--approx"]).is_err());
    }

    #[test]
    fn parses_clique_log() {
        let c = parse(&["clique-log", "build", "--input", "g.txt", "--out", "c.log"]).unwrap();
        assert_eq!(
            c,
            Command::CliqueLogBuild {
                input: PathBuf::from("g.txt"),
                out: PathBuf::from("c.log"),
                kernel: cliques::Kernel::Auto,
            }
        );
        let c = parse(&["clique-log", "info", "--log", "c.log"]).unwrap();
        assert_eq!(
            c,
            Command::CliqueLogInfo {
                log: PathBuf::from("c.log"),
            }
        );
        assert!(parse(&["clique-log"]).is_err());
        assert!(parse(&["clique-log", "verify"]).is_err());
        assert!(parse(&["clique-log", "build", "--input", "g.txt"]).is_err());
    }

    #[test]
    fn end_to_end_streaming_pipeline() {
        let dir = std::env::temp_dir().join(format!("kclique_cli_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("toy.edges");
        std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n").unwrap();

        let log = dir.join("toy.cliquelog");
        Command::CliqueLogBuild {
            input: edges.clone(),
            out: log.clone(),
            kernel: cliques::Kernel::Bitset,
        }
        .run()
        .unwrap();
        Command::CliqueLogInfo { log: log.clone() }.run().unwrap();
        for (input, log_arg) in [(Some(edges.clone()), None), (None, Some(log.clone()))] {
            Command::StreamPercolate {
                input: input.clone(),
                log: log_arg.clone(),
                k: Some(3),
                all_k: false,
                approx: false,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deprecated_sweep: None,
            }
            .run()
            .unwrap();
            Command::StreamPercolate {
                input,
                log: log_arg,
                k: None,
                all_k: true,
                approx: false,
                kernel: cliques::Kernel::Merge,
                threads: exec::Threads::Fixed(2),
                deprecated_sweep: Some("legacy".into()),
            }
            .run()
            .unwrap();
        }
        Command::StreamPercolate {
            input: Some(edges),
            log: None,
            k: Some(3),
            all_k: false,
            approx: true,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deprecated_sweep: None,
        }
        .run()
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_command() {
        assert!(parse(&["frobnicate"]).is_err());
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_generate_and_analyze() {
        let dir = std::env::temp_dir().join(format!("kclique_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Command::Generate {
            scale: "tiny".into(),
            seed: 1,
            out: dir.clone(),
        }
        .run()
        .unwrap();
        Command::Analyze {
            dataset: dir.clone(),
        }
        .run()
        .unwrap();
        // And the plain-graph commands work on the written edge list.
        let edges = dir.join("topology.edges");
        Command::Stats {
            input: edges.clone(),
        }
        .run()
        .unwrap();
        Command::Communities {
            input: edges.clone(),
            k: Some(3),
            all_k: false,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deprecated_sweep: None,
        }
        .run()
        .unwrap();
        Command::Communities {
            input: edges.clone(),
            k: None,
            all_k: true,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Fixed(2),
            deprecated_sweep: Some("legacy".into()),
        }
        .run()
        .unwrap();
        Command::Baselines {
            input: edges.clone(),
        }
        .run()
        .unwrap();
        let rewired = dir.join("null.edges");
        Command::Rewire {
            input: edges,
            output: rewired.clone(),
            swaps: Some(500),
            seed: 1,
        }
        .run()
        .unwrap();
        assert!(rewired.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_path() {
        let err = Command::Stats {
            input: PathBuf::from("/no/such/file.edges"),
        }
        .run()
        .unwrap_err();
        assert!(err.contains("/no/such/file.edges"));
    }
}
