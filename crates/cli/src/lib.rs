//! Implementation of the `kclique-cli` command-line tool.
//!
//! The binary makes the library usable without writing Rust: feed it any
//! edge list (the format of the public AS-link datasets) and it runs
//! clique percolation, prints community covers, emits the community tree
//! as Graphviz, reports graph statistics, or generates/analyses whole
//! synthetic datasets.
//!
//! ```text
//! kclique-cli communities --input topology.edges --k 4
//! kclique-cli communities --input topology.edges --all-k
//! kclique-cli tree        --input topology.edges --min-k 6
//! kclique-cli stats       --input topology.edges
//! kclique-cli generate    --scale small --seed 7 --out dataset/
//! kclique-cli analyze     --dataset dataset/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cpm_stream::StreamError;
use kclique_core::report::{f3, pct, Table};
use std::fmt;
use std::path::PathBuf;

/// Exit code for malformed command lines (BSD `EX_USAGE`).
pub const EXIT_USAGE: i32 = 2;

/// Exit code for corrupt or invalid input data — torn clique logs,
/// checksum mismatches, malformed log records (BSD `EX_DATAERR`).
pub const EXIT_CORRUPT_INPUT: i32 = 65;

/// Exit code for a run interrupted by Ctrl-C or `--deadline` (BSD
/// `EX_TEMPFAIL`): the command stopped cleanly, durable work (sealed
/// clique-log segments in particular) is preserved, and rerunning —
/// with `--resume` where applicable — continues from where it stopped.
pub const EXIT_INTERRUPTED: i32 = 75;

/// A failed command: the stderr message plus the process exit code.
///
/// Scripts can branch on the code without parsing stderr: `1` is a
/// generic failure, [`EXIT_CORRUPT_INPUT`] means the *input* is bad
/// (retrying cannot help; `clique-log recover` might), and
/// [`EXIT_INTERRUPTED`] means the run was cut short but is resumable.
#[derive(Debug)]
pub struct CliFailure {
    /// Human-readable message for stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliFailure {
    fn general(message: impl Into<String>) -> Self {
        CliFailure {
            message: message.into(),
            code: 1,
        }
    }

    fn corrupt(message: impl Into<String>) -> Self {
        CliFailure {
            message: message.into(),
            code: EXIT_CORRUPT_INPUT,
        }
    }

    fn interrupted(message: impl Into<String>) -> Self {
        CliFailure {
            message: message.into(),
            code: EXIT_INTERRUPTED,
        }
    }

    /// Classifies an I/O error: `InvalidData` (the kind every torn-log
    /// and corrupt-record path produces) is corrupt input, the rest is
    /// generic failure.
    fn io(context: impl fmt::Display, e: &std::io::Error) -> Self {
        let message = format!("{context}: {e}");
        if e.kind() == std::io::ErrorKind::InvalidData {
            Self::corrupt(message)
        } else {
            Self::general(message)
        }
    }

    /// Classifies a streaming error: cancellation maps to the
    /// resumable-interruption code, I/O errors go through [`Self::io`].
    fn stream(context: impl fmt::Display, e: &StreamError) -> Self {
        match e {
            StreamError::Interrupted => Self::interrupted(format!("{context}: {e}")),
            StreamError::Io(io_err) => Self::io(context, io_err),
        }
    }
}

impl fmt::Display for CliFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliFailure {
    fn from(message: String) -> Self {
        CliFailure::general(message)
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run CPM and print communities at one `k` or all of them.
    Communities {
        /// Edge-list file.
        input: PathBuf,
        /// Specific k (mutually exclusive with `all_k`).
        k: Option<u32>,
        /// Print every level.
        all_k: bool,
        /// Percolation engine: definitional overlap counting
        /// (`exact`) or the (k−1)-clique-key union engine (`almost`).
        mode: cpm::Mode,
        /// Set kernel for enumeration and overlap counting.
        kernel: cliques::Kernel,
        /// Worker-count policy for the parallel pipeline.
        threads: exec::Threads,
        /// Cancel the run after this many seconds (exit
        /// [`EXIT_INTERRUPTED`]).
        deadline: Option<u64>,
        /// Clique delivery: `fused` (default) streams each enumerated
        /// clique straight into the percolation engine; `staged`
        /// materialises the clique set first (escape hatch, noted on
        /// stderr). Identical communities either way.
        pipeline: cpm::Pipeline,
        /// Deprecated `--sweep` value, warned about and ignored.
        deprecated_sweep: Option<String>,
    },
    /// Print the community tree (Graphviz DOT) to stdout.
    Tree {
        /// Edge-list file.
        input: PathBuf,
        /// Hide levels below this k.
        min_k: u32,
    },
    /// Print graph statistics.
    Stats {
        /// Edge-list file.
        input: PathBuf,
    },
    /// Generate a synthetic dataset into a directory.
    Generate {
        /// Preset: tiny | small | default | full.
        scale: String,
        /// Generator seed.
        seed: u64,
        /// Output directory.
        out: PathBuf,
    },
    /// Load a dataset directory and run the full tag analysis.
    Analyze {
        /// Directory written by `generate` (or hand-authored).
        dataset: PathBuf,
    },
    /// Compare baseline methods (k-core, k-dense, Louvain) on an edge
    /// list.
    Baselines {
        /// Edge-list file.
        input: PathBuf,
    },
    /// Streaming CPM: percolate without materialising the clique set or
    /// overlap graph (optionally replaying an on-disk clique log).
    StreamPercolate {
        /// Edge-list file (mutually exclusive with `log`).
        input: Option<PathBuf>,
        /// Clique-log file written by `clique-log build`.
        log: Option<PathBuf>,
        /// Specific k (mutually exclusive with `all_k`).
        k: Option<u32>,
        /// Sweep every level and print the summary table.
        all_k: bool,
        /// Percolation mode (`exact` | `almost`), shared vocabulary
        /// with the batch engine.
        mode: cpm::Mode,
        /// Deprecated `--approx` flag was given (alias for
        /// `--mode almost`), warned about at run time.
        deprecated_approx: bool,
        /// Set kernel for the per-replay clique enumeration (live
        /// `--input` sources only; a log replay does no enumeration).
        kernel: cliques::Kernel,
        /// Worker-count policy for the multi-k wave sweep.
        threads: exec::Threads,
        /// Cancel the run after this many seconds (exit
        /// [`EXIT_INTERRUPTED`]).
        deadline: Option<u64>,
        /// Deprecated `--sweep` value, warned about and ignored.
        deprecated_sweep: Option<String>,
    },
    /// Enumerate maximal cliques once and write a replayable clique log.
    CliqueLogBuild {
        /// Edge-list file.
        input: PathBuf,
        /// Output clique-log file.
        out: PathBuf,
        /// Set kernel for the single enumeration pass.
        kernel: cliques::Kernel,
        /// Cliques per sealed (checksummed, durable) segment; 0 means
        /// the library default.
        checkpoint_cliques: usize,
        /// Recover the existing log at `out` and continue after its
        /// last durable clique instead of starting over.
        resume: bool,
        /// Stop building after this many seconds, sealing a finished,
        /// resumable log (exit [`EXIT_INTERRUPTED`]).
        deadline: Option<u64>,
    },
    /// Print a clique log's header summary.
    CliqueLogInfo {
        /// Clique-log file.
        log: PathBuf,
    },
    /// Salvage the intact prefix of a torn clique log in place.
    CliqueLogRecover {
        /// Clique-log file (possibly torn).
        log: PathBuf,
    },
    /// Run the community query daemon over a percolation snapshot.
    Serve {
        /// Snapshot file: a clique log v2 or a serialised snapshot
        /// index, sniffed by magic.
        snapshot: PathBuf,
        /// Listen address.
        addr: String,
        /// Connection-handler worker policy (also the keep-alive
        /// connection cap).
        threads: exec::Threads,
        /// Percolation mode used for the initial build and every
        /// `/reload` rebuild (clique-log snapshots only; a serialised
        /// index is loaded as-is).
        mode: cpm::Mode,
    },
    /// Merge and clean real-format topology sources into a dense edge
    /// list (the paper's §2.1 pipeline).
    Ingest {
        /// Source files, merged in order.
        inputs: Vec<PathBuf>,
        /// Forced format for every source; `None` auto-detects each
        /// source from its extension and leading content.
        format: Option<ingest::Format>,
        /// Output edge-list file (dense internal ids, consumable by
        /// every other verb). `None` in `--check` mode.
        out: Option<PathBuf>,
        /// Dry run: parse, clean, and print the per-stage counters
        /// without writing anything.
        check: bool,
        /// Also write the internal-id → AS-number table here.
        map: Option<PathBuf>,
        /// Skip and count bad records instead of aborting on the first.
        lenient: bool,
        /// Keep only the largest connected component.
        largest_cc: bool,
        /// Emit the report as one JSON object instead of a table.
        json: bool,
        /// Cancel the run after this many seconds (exit
        /// [`EXIT_INTERRUPTED`]).
        deadline: Option<u64>,
    },
    /// Degree-preserving rewiring: write a null-model edge list.
    Rewire {
        /// Edge-list file.
        input: PathBuf,
        /// Output edge-list file.
        output: PathBuf,
        /// Swap attempts (default 10 × edges).
        swaps: Option<usize>,
        /// RNG seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
kclique-cli — k-clique communities for AS-level topologies

USAGE:
  kclique-cli communities --input <edges> (--k <n> | --all-k) [--mode exact|almost]
                          [--kernel auto|bitset|merge] [--threads <n>|auto] [--deadline <secs>]
                          [--pipeline fused|staged]
  kclique-cli tree        --input <edges> [--min-k <n>]
  kclique-cli stats       --input <edges>
  kclique-cli generate    [--scale tiny|small|medium|default|full] [--seed <u64>] --out <dir>
  kclique-cli analyze     --dataset <dir>
  kclique-cli baselines   --input <edges>
  kclique-cli rewire      --input <edges> --output <edges> [--swaps <n>] [--seed <u64>]
  kclique-cli stream-percolate (--input <edges> | --log <file>) (--k <n> | --all-k)
                          [--mode exact|almost] [--kernel auto|bitset|merge]
                          [--threads <n>|auto] [--deadline <secs>]
  kclique-cli clique-log  build --input <edges> --out <file> [--kernel auto|bitset|merge]
                          [--checkpoint-cliques <n>] [--resume] [--deadline <secs>]
  kclique-cli clique-log  info    --log <file>
  kclique-cli clique-log  recover --log <file>
  kclique-cli serve       --snapshot <file> [--addr <host:port>] [--threads <n>|auto]
                          [--mode exact|almost]
  kclique-cli ingest      --input <file> [--input <file> ...] (--out <edges> | --check)
                          [--format auto|edges|aslinks|dimes] [--map <file>] [--lenient]
                          [--largest-cc] [--json] [--deadline <secs>]
  kclique-cli help

The percolation mode (--mode) picks the community engine: `exact`
(default) adjoins cliques by definitional pairwise overlap counting,
`almost` unions them through hashed (k−1)-clique keys — typically 5× or
more faster on Internet-like topologies, identical output there, and
never over-merged (divergence can only split communities). In
`stream-percolate` the almost engine is the O(nodes) last-clique-seen
form. The --approx flag of previous releases is a deprecated alias for
`--mode almost`.

The set kernel (--kernel) picks the Bron–Kerbosch / overlap-counting
representation: `merge` walks sorted adjacency lists, `bitset` uses dense
word-wise bitmaps, and `auto` (default) chooses per subproblem. Every
kernel produces identical output; only the speed differs.

The worker count (--threads) sizes the persistent thread pool: a fixed
`<n>` forces that many workers, `auto` (default) scales with the input
and falls back to sequential when the work would not amortise the
fan-out. Output is bit-identical at every thread count.

Long commands stop cooperatively: Ctrl-C (or an expired --deadline)
cancels at the next safe point instead of killing mid-write, and the
process exits 75 to signal \"interrupted, resumable\". A cancelled
`clique-log build` seals a valid log; rerun with --resume to continue
from its last durable clique. Exit codes: 0 success, 1 failure, 2 bad
usage, 65 corrupt input (e.g. a torn log — try `clique-log recover`),
75 interrupted/resumable.

`serve` answers community queries over HTTP from a frozen snapshot (a
clique log or a serialised snapshot index; default address
127.0.0.1:7117): GET /membership/{as}, /community/{id}, /common/{a}/{b},
/tree/{id}, /healthz, /stats, and POST /reload to rebuild from disk and
swap atomically. Ctrl-C during the initial load exits 75 (nothing was
served); Ctrl-C while serving drains connections and exits 0.

The clique delivery (--pipeline) picks how `communities` feeds the
percolation engine: `fused` (default) streams every maximal clique into
the engine as Bron-Kerbosch emits it — one pass, no clique list in
memory — while `staged` materialises the clique set first and is kept as
an escape hatch (a note goes to stderr). Both produce identical
communities.

The --sweep flag of previous releases is deprecated: the fused sweep is
now the only pipeline. The flag is accepted and ignored, with a warning.

`ingest` merges real measurement sources — CAIDA-style AS-links files,
DIMES-like CSV exports, plain edge lists — and cleans the union the way
the paper's Section 2.1 does: duplicate links collapse, self-loops go,
and --largest-cc keeps only the giant component. AS numbers are
re-densified (the --map file records internal id -> AS number) so the
output is directly consumable by every other verb. Parsing is strict by
default: the first malformed record aborts with a file:line[:column]
diagnostic and exit 65; --lenient skips and counts bad records instead.
Resource caps (line length, total bytes/lines/records/nodes) abort in
both modes. Per-stage counters go to stderr (or stdout with --check,
which parses and cleans without writing anything); --json renders them
as one JSON object.
";

impl Command {
    /// Parses the argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands, missing
    /// values, or malformed numbers.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, String> {
        let mut it = args.into_iter();
        let sub = it.next().unwrap_or_else(|| "help".to_owned());
        let rest: Vec<String> = it.collect();
        let get = |flag: &str| -> Option<String> {
            rest.iter()
                .position(|a| a == flag)
                .and_then(|i| rest.get(i + 1).cloned())
        };
        let has = |flag: &str| rest.iter().any(|a| a == flag);
        let required = |flag: &str| -> Result<String, String> {
            get(flag).ok_or_else(|| format!("missing required flag {flag}"))
        };
        let kernel = || -> Result<cliques::Kernel, String> {
            match get("--kernel") {
                Some(v) => v.parse().map_err(|e: String| format!("bad --kernel: {e}")),
                None => Ok(cliques::Kernel::Auto),
            }
        };
        let threads = || -> Result<exec::Threads, String> {
            match get("--threads") {
                Some(v) => v.parse().map_err(|e: String| format!("bad --threads: {e}")),
                None => Ok(exec::Threads::Auto),
            }
        };
        let deadline = || -> Result<Option<u64>, String> {
            match get("--deadline") {
                Some(v) => v
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|e| format!("bad --deadline: {e}")),
                None => Ok(None),
            }
        };
        let mode = || -> Result<cpm::Mode, String> {
            match get("--mode") {
                Some(v) => v.parse().map_err(|e: String| format!("bad --mode: {e}")),
                None => Ok(cpm::Mode::Exact),
            }
        };
        let pipeline = || -> Result<cpm::Pipeline, String> {
            match get("--pipeline") {
                Some(v) => v
                    .parse()
                    .map_err(|e: String| format!("bad --pipeline: {e}")),
                None => Ok(cpm::Pipeline::Fused),
            }
        };
        // Deprecated, value-carrying, ignored: warn at run time so old
        // scripts keep working for one more release.
        let deprecated_sweep = || get("--sweep");

        match sub.as_str() {
            "communities" => {
                let input = PathBuf::from(required("--input")?);
                let k = match get("--k") {
                    Some(v) => Some(v.parse::<u32>().map_err(|e| format!("bad --k: {e}"))?),
                    None => None,
                };
                let all_k = has("--all-k");
                if k.is_none() && !all_k {
                    return Err("communities needs --k <n> or --all-k".to_owned());
                }
                if k.is_some() && all_k {
                    return Err("--k and --all-k are mutually exclusive".to_owned());
                }
                if let Some(k) = k {
                    if k < 2 {
                        return Err("--k must be at least 2".to_owned());
                    }
                }
                Ok(Command::Communities {
                    input,
                    k,
                    all_k,
                    mode: mode()?,
                    kernel: kernel()?,
                    threads: threads()?,
                    deadline: deadline()?,
                    pipeline: pipeline()?,
                    deprecated_sweep: deprecated_sweep(),
                })
            }
            "tree" => Ok(Command::Tree {
                input: PathBuf::from(required("--input")?),
                min_k: match get("--min-k") {
                    Some(v) => v.parse().map_err(|e| format!("bad --min-k: {e}"))?,
                    None => 2,
                },
            }),
            "stats" => Ok(Command::Stats {
                input: PathBuf::from(required("--input")?),
            }),
            "generate" => {
                let scale = get("--scale").unwrap_or_else(|| "small".to_owned());
                if !["tiny", "small", "medium", "default", "full"].contains(&scale.as_str()) {
                    return Err(format!("unknown scale {scale:?}"));
                }
                Ok(Command::Generate {
                    scale,
                    seed: match get("--seed") {
                        Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
                        None => 42,
                    },
                    out: PathBuf::from(required("--out")?),
                })
            }
            "analyze" => Ok(Command::Analyze {
                dataset: PathBuf::from(required("--dataset")?),
            }),
            "baselines" => Ok(Command::Baselines {
                input: PathBuf::from(required("--input")?),
            }),
            "rewire" => Ok(Command::Rewire {
                input: PathBuf::from(required("--input")?),
                output: PathBuf::from(required("--output")?),
                swaps: match get("--swaps") {
                    Some(v) => Some(v.parse().map_err(|e| format!("bad --swaps: {e}"))?),
                    None => None,
                },
                seed: match get("--seed") {
                    Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
                    None => 42,
                },
            }),
            "stream-percolate" => {
                let input = get("--input").map(PathBuf::from);
                let log = get("--log").map(PathBuf::from);
                match (&input, &log) {
                    (None, None) => {
                        return Err(
                            "stream-percolate needs --input <edges> or --log <file>".to_owned()
                        )
                    }
                    (Some(_), Some(_)) => {
                        return Err("--input and --log are mutually exclusive".to_owned())
                    }
                    _ => {}
                }
                let k = match get("--k") {
                    Some(v) => Some(v.parse::<u32>().map_err(|e| format!("bad --k: {e}"))?),
                    None => None,
                };
                let all_k = has("--all-k");
                if k.is_none() && !all_k {
                    return Err("stream-percolate needs --k <n> or --all-k".to_owned());
                }
                if k.is_some() && all_k {
                    return Err("--k and --all-k are mutually exclusive".to_owned());
                }
                if let Some(k) = k {
                    if k < 2 {
                        return Err("--k must be at least 2".to_owned());
                    }
                }
                // `--approx` survives as a deprecated alias for
                // `--mode almost`; mixing the old and new spellings is
                // ambiguous, so it is rejected rather than resolved.
                let deprecated_approx = has("--approx");
                if deprecated_approx && has("--mode") {
                    return Err("--approx is a deprecated alias for --mode almost; \
                         give --mode alone"
                        .to_owned());
                }
                let mode = if deprecated_approx {
                    cpm::Mode::Almost
                } else {
                    mode()?
                };
                Ok(Command::StreamPercolate {
                    input,
                    log,
                    k,
                    all_k,
                    mode,
                    deprecated_approx,
                    kernel: kernel()?,
                    threads: threads()?,
                    deadline: deadline()?,
                    deprecated_sweep: deprecated_sweep(),
                })
            }
            "clique-log" => match rest.first().map(String::as_str) {
                Some("build") => {
                    let checkpoint_cliques = match get("--checkpoint-cliques") {
                        Some(v) => {
                            let n: usize = v
                                .parse()
                                .map_err(|e| format!("bad --checkpoint-cliques: {e}"))?;
                            if n == 0 {
                                return Err("--checkpoint-cliques must be at least 1".to_owned());
                            }
                            n
                        }
                        None => 0,
                    };
                    Ok(Command::CliqueLogBuild {
                        input: PathBuf::from(required("--input")?),
                        out: PathBuf::from(required("--out")?),
                        kernel: kernel()?,
                        checkpoint_cliques,
                        resume: has("--resume"),
                        deadline: deadline()?,
                    })
                }
                Some("info") => Ok(Command::CliqueLogInfo {
                    log: PathBuf::from(required("--log")?),
                }),
                Some("recover") => Ok(Command::CliqueLogRecover {
                    log: PathBuf::from(required("--log")?),
                }),
                _ => Err("clique-log needs a subcommand: build | info | recover".to_owned()),
            },
            "serve" => Ok(Command::Serve {
                snapshot: PathBuf::from(required("--snapshot")?),
                addr: get("--addr").unwrap_or_else(|| "127.0.0.1:7117".to_owned()),
                threads: threads()?,
                mode: mode()?,
            }),
            "ingest" => {
                // Unlike every other flag, --input repeats: sources
                // merge in command-line order. A missing value, or one
                // that is itself a flag, is a usage error — otherwise a
                // mistyped command fails later with a misleading
                // file-open error on a path like "--check".
                let mut inputs: Vec<PathBuf> = Vec::new();
                for (i, a) in rest.iter().enumerate() {
                    if a != "--input" {
                        continue;
                    }
                    match rest.get(i + 1) {
                        Some(v) if !v.starts_with("--") => inputs.push(PathBuf::from(v)),
                        _ => return Err("--input needs a file path".to_owned()),
                    }
                }
                if inputs.is_empty() {
                    return Err("ingest needs at least one --input <file>".to_owned());
                }
                let format = match get("--format").as_deref() {
                    None | Some("auto") => None,
                    Some(v) => Some(
                        v.parse::<ingest::Format>()
                            .map_err(|e| format!("bad --format: {e}"))?,
                    ),
                };
                let out = get("--out").map(PathBuf::from);
                let check = has("--check");
                if out.is_none() && !check {
                    return Err("ingest needs --out <edges> or --check".to_owned());
                }
                if out.is_some() && check {
                    return Err("--out and --check are mutually exclusive".to_owned());
                }
                Ok(Command::Ingest {
                    inputs,
                    format,
                    out,
                    check,
                    map: get("--map").map(PathBuf::from),
                    lenient: has("--lenient"),
                    largest_cc: has("--largest-cc"),
                    json: has("--json"),
                    deadline: deadline()?,
                })
            }
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(format!("unknown command {other:?}")),
        }
    }

    /// Executes the command, writing human output to stdout.
    ///
    /// # Errors
    ///
    /// Returns a [`CliFailure`]: a message suitable for stderr plus the
    /// process exit code (`1` generic, [`EXIT_CORRUPT_INPUT`] for torn
    /// or corrupt logs, [`EXIT_INTERRUPTED`] for a cancelled-but-
    /// resumable run).
    pub fn run(&self) -> Result<(), CliFailure> {
        match self {
            Command::Help => {
                print!("{USAGE}");
                Ok(())
            }
            Command::Communities {
                input,
                k,
                all_k,
                mode,
                kernel,
                threads,
                deadline,
                pipeline,
                deprecated_sweep,
            } => {
                warn_legacy_flags(deprecated_sweep, false, Some(*pipeline));
                let g = load_graph(input)?;
                if *all_k {
                    // Always the cancellable pipeline: a live token is
                    // bit-identical to the plain one, and Ctrl-C /
                    // --deadline then stop the sweep cooperatively.
                    let token = cancel_token(deadline);
                    let levels = match pipeline {
                        cpm::Pipeline::Fused => {
                            cpm::percolate_fused_cancellable(&g, *threads, *kernel, &token, *mode)
                                .map_err(|_| interrupted_no_durable_state())?
                                .levels
                        }
                        cpm::Pipeline::Staged => {
                            cpm::parallel::percolate_parallel_cancellable_mode(
                                &g, *threads, *kernel, &token, *mode,
                            )
                            .map_err(|_| interrupted_no_durable_state())?
                            .levels
                        }
                    };
                    let mut table = Table::new(vec!["k", "communities", "largest"]);
                    for level in &levels {
                        let largest = level
                            .communities
                            .iter()
                            .map(cpm::Community::size)
                            .max()
                            .unwrap_or(0);
                        table.row(vec![
                            level.k.to_string(),
                            level.communities.len().to_string(),
                            largest.to_string(),
                        ]);
                    }
                    print!("{}", table.render());
                } else {
                    let k = k.expect("parse guarantees k for non-all-k");
                    // The single-k fast path has no cancellation points;
                    // under a deadline, run the cancellable full sweep
                    // and project out level k instead.
                    let comms: Vec<Vec<asgraph::NodeId>> = if deadline.is_some() {
                        let token = cancel_token(deadline);
                        match pipeline {
                            cpm::Pipeline::Fused => {
                                let result = cpm::percolate_fused_cancellable(
                                    &g, *threads, *kernel, &token, *mode,
                                )
                                .map_err(|_| interrupted_no_durable_state())?;
                                let mut covers: Vec<Vec<asgraph::NodeId>> = result
                                    .level(k)
                                    .map(|level| {
                                        level
                                            .communities
                                            .iter()
                                            .map(|c| c.members.clone())
                                            .collect()
                                    })
                                    .unwrap_or_default();
                                // Canonical cover order: byte-identical to
                                // the deadline-free path below.
                                covers.sort_unstable();
                                covers
                            }
                            cpm::Pipeline::Staged => {
                                let result = cpm::parallel::percolate_parallel_cancellable_mode(
                                    &g, *threads, *kernel, &token, *mode,
                                )
                                .map_err(|_| interrupted_no_durable_state())?;
                                result
                                    .level(k)
                                    .map(|level| {
                                        level
                                            .communities
                                            .iter()
                                            .map(|c| c.members.clone())
                                            .collect()
                                    })
                                    .unwrap_or_default()
                            }
                        }
                    } else {
                        match pipeline {
                            cpm::Pipeline::Fused => {
                                cpm::percolate_at_fused_with_kernel(&g, k as usize, *kernel, *mode)
                            }
                            cpm::Pipeline::Staged => {
                                if *mode == cpm::Mode::Almost {
                                    cpm::percolate_at_mode(&g, k as usize, *mode)
                                } else {
                                    cpm::percolate_at_with_kernel(&g, k as usize, *kernel)
                                }
                            }
                        }
                    };
                    println!("# {} {k}-clique communities", comms.len());
                    for (i, c) in comms.iter().enumerate() {
                        let ids: Vec<String> = c.iter().map(ToString::to_string).collect();
                        println!("{i}\t{}", ids.join(" "));
                    }
                }
                Ok(())
            }
            Command::Tree { input, min_k } => {
                let g = load_graph(input)?;
                let result = cpm::percolate(&g);
                let tree = kclique_core::CommunityTree::build(&result);
                print!("{}", tree.to_dot(*min_k));
                Ok(())
            }
            Command::Stats { input } => {
                let g = load_graph(input)?;
                let deg = g.degrees();
                let cliques = cliques::max_cliques(&g);
                let cores = baselines::kcore::decompose(&g);
                let mut table = Table::new(vec!["statistic", "value"]);
                table.row(vec!["nodes".into(), g.node_count().to_string()]);
                table.row(vec!["edges".into(), g.edge_count().to_string()]);
                table.row(vec!["mean degree".into(), f3(deg.mean)]);
                table.row(vec!["max degree".into(), deg.max.to_string()]);
                table.row(vec![
                    "connected components".into(),
                    asgraph::components::connected_components(&g)
                        .count()
                        .to_string(),
                ]);
                table.row(vec!["degeneracy".into(), cores.degeneracy().to_string()]);
                table.row(vec!["maximal cliques".into(), cliques.len().to_string()]);
                table.row(vec![
                    "largest clique".into(),
                    cliques.max_size().to_string(),
                ]);
                table.row(vec![
                    "triangles".into(),
                    asgraph::metrics::triangle_count(&g).to_string(),
                ]);
                table.row(vec![
                    "avg clustering".into(),
                    f3(asgraph::stats::average_clustering(&g)),
                ]);
                if let Some(alpha) = asgraph::stats::power_law_alpha(&g, 6) {
                    table.row(vec!["power-law alpha (k_min=6)".into(), f3(alpha)]);
                }
                if let Some(r) = asgraph::stats::degree_assortativity(&g) {
                    table.row(vec!["degree assortativity".into(), f3(r)]);
                }
                print!("{}", table.render());
                Ok(())
            }
            Command::Generate { scale, seed, out } => {
                let config = match scale.as_str() {
                    "tiny" => topology::ModelConfig::tiny(*seed),
                    "medium" => topology::ModelConfig::medium(*seed),
                    "default" => topology::ModelConfig::default_scale(*seed),
                    "full" => topology::ModelConfig::full_scale(*seed),
                    _ => topology::ModelConfig::small(*seed),
                };
                let topo = topology::generate(&config).map_err(|e| e.to_string())?;
                topology::io::save_dataset(&topo, out).map_err(|e| e.to_string())?;
                println!(
                    "wrote {} ASes / {} links / {} IXPs to {}",
                    topo.graph.node_count(),
                    topo.graph.edge_count(),
                    topo.ixps.len(),
                    out.display()
                );
                Ok(())
            }
            Command::Analyze { dataset } => {
                let topo = topology::io::load_dataset(dataset).map_err(|e| e.to_string())?;
                let result = cpm::percolate(&topo.graph);
                let analysis = kclique_core::analyze_topology(topo, result);
                let s = analysis.topo.tag_summary();
                println!(
                    "{} ASes, {} links | on-IXP {} | national {} continental {} worldwide {} unknown {}",
                    analysis.topo.graph.node_count(),
                    analysis.topo.graph.edge_count(),
                    s.on_ixp,
                    s.national,
                    s.continental,
                    s.worldwide,
                    s.unknown
                );
                println!(
                    "{} communities, k_max {}, bands: root <= {}, crown >= {}",
                    analysis.result.total_communities(),
                    analysis.result.k_max().unwrap_or(0),
                    analysis.bounds.root_max_k,
                    analysis.bounds.crown_min_k
                );
                let mut table = Table::new(vec!["k", "communities", "mean on-IXP"]);
                for level in &analysis.result.levels {
                    let fracs: Vec<f64> = analysis
                        .infos
                        .iter()
                        .filter(|i| i.id.k == level.k)
                        .map(|i| i.on_ixp_fraction)
                        .collect();
                    let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
                    table.row(vec![
                        level.k.to_string(),
                        level.communities.len().to_string(),
                        pct(mean),
                    ]);
                }
                print!("{}", table.render());
                Ok(())
            }
            Command::Baselines { input } => {
                let g = load_graph(input)?;
                let cores = baselines::kcore::decompose(&g);
                let partition = baselines::louvain::louvain(&g);
                let mut table = Table::new(vec!["method", "result"]);
                table.row(vec![
                    "k-core".into(),
                    format!(
                        "degeneracy {}, top core has {} nodes",
                        cores.degeneracy(),
                        cores.core(cores.degeneracy()).len()
                    ),
                ]);
                let d3 = baselines::kdense::communities(&g, 3);
                table.row(vec![
                    "k-dense (k=3)".into(),
                    format!(
                        "{} communities covering {} nodes",
                        d3.len(),
                        d3.iter().map(Vec::len).sum::<usize>()
                    ),
                ]);
                table.row(vec![
                    "Louvain".into(),
                    format!(
                        "{} communities, modularity {}",
                        partition.community_count,
                        f3(partition.modularity)
                    ),
                ]);
                let cpm3 = cpm::percolate_at(&g, 3);
                table.row(vec![
                    "k-clique (k=3)".into(),
                    format!(
                        "{} communities covering {} memberships",
                        cpm3.len(),
                        cpm3.iter().map(Vec::len).sum::<usize>()
                    ),
                ]);
                print!("{}", table.render());
                Ok(())
            }
            Command::StreamPercolate {
                input,
                log,
                k,
                all_k,
                mode,
                deprecated_approx,
                kernel,
                threads,
                deadline,
                deprecated_sweep,
            } => {
                warn_legacy_flags(deprecated_sweep, *deprecated_approx, None);
                // Both source kinds funnel through the same dyn-dispatch
                // path; the graph (if any) must outlive the source. The
                // token rides inside the source, so every replay of the
                // sweep polls it.
                let token = cancel_token(deadline);
                let graph;
                let mut graph_src;
                let mut log_src;
                let source: &mut dyn cpm_stream::CliqueSource = if let Some(input) = input {
                    graph = load_graph(input)?;
                    graph_src = cpm_stream::GraphSource::with_kernel(&graph, *kernel)
                        .with_cancel(token.clone());
                    &mut graph_src
                } else {
                    let log = log.as_ref().expect("parse guarantees input xor log");
                    log_src = cpm_stream::LogSource::open(log)
                        .map_err(|e| CliFailure::stream(log.display(), &e))?
                        .with_cancel(token.clone());
                    &mut log_src
                };
                if *all_k {
                    let result =
                        cpm_stream::stream_percolate_parallel_mode(source, *threads, *mode)
                            .map_err(|e| CliFailure::stream("stream-percolate", &e))?;
                    let mut table = Table::new(vec!["k", "communities", "largest"]);
                    for level in &result.levels {
                        let largest = level
                            .communities
                            .iter()
                            .map(cpm::Community::size)
                            .max()
                            .unwrap_or(0);
                        table.row(vec![
                            level.k.to_string(),
                            level.communities.len().to_string(),
                            largest.to_string(),
                        ]);
                    }
                    print!("{}", table.render());
                } else {
                    let k = k.expect("parse guarantees k for non-all-k") as usize;
                    let mut p =
                        cpm_stream::StreamPercolator::with_mode(source.node_count(), k, *mode);
                    source
                        .replay(&mut |clique| p.push(clique))
                        .map_err(|e| CliFailure::stream("stream-percolate", &e))?;
                    let mut comms: Vec<Vec<asgraph::NodeId>> =
                        p.finish().into_iter().map(|c| c.members).collect();
                    comms.sort_unstable();
                    let tag = match mode {
                        cpm::Mode::Almost => " (almost)",
                        cpm::Mode::Exact => "",
                    };
                    println!("# {} {k}-clique communities{tag}", comms.len());
                    for (i, c) in comms.iter().enumerate() {
                        let ids: Vec<String> = c.iter().map(ToString::to_string).collect();
                        println!("{i}\t{}", ids.join(" "));
                    }
                }
                Ok(())
            }
            Command::CliqueLogBuild {
                input,
                out,
                kernel,
                checkpoint_cliques,
                resume,
                deadline,
            } => {
                let g = load_graph(input)?;
                let token = cancel_token(deadline);
                let options = cpm_stream::LogBuildOptions {
                    kernel: *kernel,
                    checkpoint_cliques: *checkpoint_cliques,
                    resume: *resume,
                    cancel: Some(token),
                };
                let outcome = cpm_stream::build_clique_log(&g, out, &options)
                    .map_err(|e| CliFailure::stream(format_args!("{}", out.display()), &e))?;
                if outcome.resumed_from > 0 {
                    println!(
                        "resumed after {} durable cliques already in {}",
                        outcome.resumed_from,
                        out.display()
                    );
                }
                println!(
                    "wrote {} cliques over {} nodes (largest {}) to {}",
                    outcome.info.clique_count,
                    outcome.info.node_count,
                    outcome.info.max_size,
                    out.display()
                );
                if outcome.interrupted {
                    return Err(CliFailure::interrupted(format!(
                        "interrupted: {} holds {} cliques and is sealed; rerun with --resume to \
                         continue the enumeration",
                        out.display(),
                        outcome.info.clique_count
                    )));
                }
                Ok(())
            }
            Command::CliqueLogInfo { log } => {
                let reader = cpm_stream::CliqueLogReader::open(log)
                    .map_err(|e| CliFailure::io(log.display(), &e))?;
                let info = reader.info();
                let mut table = Table::new(vec!["field", "value"]);
                table.row(vec!["nodes".into(), info.node_count.to_string()]);
                table.row(vec!["cliques".into(), info.clique_count.to_string()]);
                table.row(vec!["largest clique".into(), info.max_size.to_string()]);
                if let Ok(meta) = std::fs::metadata(log) {
                    table.row(vec!["file bytes".into(), meta.len().to_string()]);
                }
                print!("{}", table.render());
                Ok(())
            }
            Command::CliqueLogRecover { log } => {
                let report = cpm_stream::CliqueLogReader::recover(log).map_err(|e| {
                    CliFailure::io(format_args!("cannot recover {}", log.display()), &e)
                })?;
                let mut table = Table::new(vec!["field", "value"]);
                table.row(vec!["nodes".into(), report.node_count.to_string()]);
                table.row(vec![
                    "cliques recovered".into(),
                    report.cliques_recovered.to_string(),
                ]);
                table.row(vec![
                    "segments recovered".into(),
                    report.segments_recovered.to_string(),
                ]);
                table.row(vec!["largest clique".into(), report.max_size.to_string()]);
                table.row(vec![
                    "bytes discarded".into(),
                    report.bytes_discarded.to_string(),
                ]);
                table.row(vec![
                    "was already finished".into(),
                    report.was_finished.to_string(),
                ]);
                print!("{}", table.render());
                if !report.was_finished {
                    println!(
                        "log sealed at the last durable clique; continue with: \
                         clique-log build --resume --input <edges> --out {}",
                        log.display()
                    );
                }
                Ok(())
            }
            Command::Serve {
                snapshot,
                addr,
                threads,
                mode,
            } => {
                // One token covers the whole lifetime: SIGINT during
                // the initial load interrupts it (exit 75, nothing was
                // served yet); SIGINT while serving drains connections
                // and exits 0 — the daemon owes its peers a clean
                // close, not a resumable error.
                let token = cancel_token(&None);
                // Test hook: models a slow snapshot load so the
                // interrupted-startup exit path (SIGINT before serving
                // begins -> 75) can be exercised deterministically. The
                // pause only delays; the exit path below is the real
                // load-interruption mapping.
                if let Ok(ms) = std::env::var("KCLIQUE_SERVE_STARTUP_PAUSE_MS") {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|e| format!("bad KCLIQUE_SERVE_STARTUP_PAUSE_MS: {e}"))?;
                    let until = std::time::Instant::now() + std::time::Duration::from_millis(ms);
                    while std::time::Instant::now() < until && !token.is_cancelled() {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
                let mut config = serve::ServeConfig::new(addr.clone(), snapshot.clone());
                config.mode = *mode;
                config.threads = match threads {
                    exec::Threads::Fixed(n) => (*n).max(1),
                    exec::Threads::Auto => exec::available_parallelism().clamp(2, 8),
                };
                let server = serve::Server::bind(&config, &token).map_err(|e| match e {
                    serve::ServeError::Load(serve::LoadError::Corrupt(err)) => {
                        CliFailure::corrupt(format!("{}: {err}", snapshot.display()))
                    }
                    serve::ServeError::Load(serve::LoadError::Interrupted) => {
                        CliFailure::interrupted(
                            "interrupted while loading the snapshot; nothing was served, \
                             rerun to restart",
                        )
                    }
                    serve::ServeError::Load(serve::LoadError::Io(err)) => {
                        CliFailure::general(format!("cannot load {}: {err}", snapshot.display()))
                    }
                    serve::ServeError::Io(err) => {
                        CliFailure::general(format!("cannot bind {addr}: {err}"))
                    }
                })?;
                let local = server
                    .local_addr()
                    .map_err(|e| CliFailure::general(format!("cannot read bound address: {e}")))?;
                println!(
                    "serving {} on http://{local} ({} workers); Ctrl-C to stop",
                    snapshot.display(),
                    config.threads
                );
                server
                    .run(&token)
                    .map_err(|e| CliFailure::general(format!("server failed: {e}")))?;
                println!(
                    "shutdown: connections drained (generation {})",
                    server.generation()
                );
                Ok(())
            }
            Command::Ingest {
                inputs,
                format,
                out,
                check,
                map,
                lenient,
                largest_cc,
                json,
                deadline,
            } => {
                let token = cancel_token(deadline);
                let mut ing = ingest::Ingestor::new(ingest::IngestOptions {
                    lenient: *lenient,
                    limits: ingest::Limits::default(),
                    largest_cc: *largest_cc,
                    cancel: Some(token),
                });
                for path in inputs {
                    ing.ingest_path(path, *format).map_err(ingest_failure)?;
                }
                let outcome = ing.finish().map_err(ingest_failure)?;
                let report = if *json {
                    let mut s = outcome.report.to_json();
                    s.push('\n');
                    s
                } else {
                    outcome.report.render_human()
                };
                if *check {
                    // Dry run: the report IS the product, so it goes to
                    // stdout and nothing touches the filesystem.
                    print!("{report}");
                    return Ok(());
                }
                let out = out.as_ref().expect("parse guarantees out xor check");
                let edges = asgraph::io::to_edge_list_string(&outcome.graph);
                let table = map.as_ref().map(|_| {
                    let mut table = String::from("# internal_id as_number\n");
                    for (internal, external) in outcome.external_ids.iter().enumerate() {
                        use std::fmt::Write as _;
                        let _ = writeln!(table, "{internal} {external}");
                    }
                    table
                });
                // Failed runs write nothing: both outputs are staged as
                // .tmp siblings and renamed into place only after every
                // write succeeds, so a map failure cannot leave a fresh
                // out file behind.
                let out_tmp = tmp_sibling(out);
                let map_tmp = map.as_ref().map(|m| tmp_sibling(m));
                let staged = (|| -> Result<(), String> {
                    std::fs::write(&out_tmp, &edges)
                        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
                    if let (Some(m), Some(m_tmp), Some(table)) = (map, &map_tmp, &table) {
                        std::fs::write(m_tmp, table)
                            .map_err(|e| format!("cannot write {}: {e}", m.display()))?;
                    }
                    std::fs::rename(&out_tmp, out)
                        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
                    if let (Some(m), Some(m_tmp)) = (map, &map_tmp) {
                        std::fs::rename(m_tmp, m).map_err(|e| {
                            // The out file is already in place; take it
                            // back out so the contract holds.
                            let _ = std::fs::remove_file(out);
                            format!("cannot write {}: {e}", m.display())
                        })?;
                    }
                    Ok(())
                })();
                if let Err(e) = staged {
                    let _ = std::fs::remove_file(&out_tmp);
                    if let Some(m_tmp) = &map_tmp {
                        let _ = std::fs::remove_file(m_tmp);
                    }
                    return Err(e.into());
                }
                // Counters go to stderr: stdout stays byte-clean for
                // pipelines, like every other verb's notices.
                eprint!("{report}");
                println!(
                    "wrote {} ASes / {} links to {}{}",
                    outcome.graph.node_count(),
                    outcome.graph.edge_count(),
                    out.display(),
                    match map {
                        Some(m) => format!(" (id map: {})", m.display()),
                        None => String::new(),
                    }
                );
                Ok(())
            }
            Command::Rewire {
                input,
                output,
                swaps,
                seed,
            } => {
                use rand::SeedableRng;
                let g = load_graph(input)?;
                let attempts = swaps.unwrap_or(10 * g.edge_count());
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                let (h, report) = asgraph::rewire::rewire(&g, attempts, &mut rng);
                std::fs::write(output, asgraph::io::to_edge_list_string(&h))
                    .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
                println!(
                    "rewired {}: {}/{} swaps succeeded, wrote {}",
                    input.display(),
                    report.successes,
                    report.attempts,
                    output.display()
                );
                Ok(())
            }
        }
    }
}

/// The `.tmp` staging sibling of an output path (same directory, so
/// the final rename is atomic on every real filesystem).
fn tmp_sibling(path: &std::path::Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("out"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Builds the cooperative-cancellation token for a long command: an
/// optional `--deadline` plus Ctrl-C watching. The first SIGINT trips
/// the token (the command stops at its next poll and exits
/// [`EXIT_INTERRUPTED`]); a second one kills the process the usual way.
fn cancel_token(deadline: &Option<u64>) -> exec::CancelToken {
    let token = match deadline {
        Some(secs) => exec::CancelToken::with_deadline(std::time::Duration::from_secs(*secs)),
        None => exec::CancelToken::new(),
    };
    token.watch_sigint();
    token
}

/// Classifies an ingestion failure onto the exit-code contract: parse
/// (and resource-cap) diagnostics are corrupt input (65), transport
/// errors classify by I/O kind, cancellation is resumable (75).
fn ingest_failure(e: ingest::IngestFailure) -> CliFailure {
    match e {
        ingest::IngestFailure::Parse(err) => CliFailure::corrupt(err.to_string()),
        ingest::IngestFailure::Io { source, error } => CliFailure::io(source, &error),
        ingest::IngestFailure::Interrupted => CliFailure::interrupted(
            "interrupted during ingestion; no output was written, rerun to restart",
        ),
    }
}

fn interrupted_no_durable_state() -> CliFailure {
    CliFailure::interrupted(
        "interrupted before completion; this command keeps no durable state, rerun to restart",
    )
}

/// Every legacy-flag notice of an invocation, funnelled through one
/// stderr-only helper: `--sweep <v>` (deprecated, ignored), `--approx`
/// (deprecated alias of `--mode almost`), and the `--pipeline staged`
/// escape hatch (supported, noted). Keeping them in one place is what
/// the byte-clean-stdout regression test pins: notices never leak into
/// the machine-readable output stream.
fn warn_legacy_flags(sweep: &Option<String>, approx: bool, pipeline: Option<cpm::Pipeline>) {
    let mut notices: Vec<String> = Vec::new();
    if let Some(v) = sweep {
        notices.push(format!(
            "--sweep {v} is deprecated and ignored; the fused sweep is the only pipeline"
        ));
    }
    if approx {
        notices.push("--approx is deprecated; use --mode almost".to_owned());
    }
    if pipeline == Some(cpm::Pipeline::Staged) {
        notices.push(
            "--pipeline staged materialises the clique set before percolating; \
             the default fused pipeline produces identical communities in one pass"
                .to_owned(),
        );
    }
    for n in notices {
        eprintln!("warning: {n}");
    }
}

fn load_graph(path: &PathBuf) -> Result<asgraph::Graph, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    asgraph::io::parse_edge_list(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_serve() {
        let c = parse(&["serve", "--snapshot", "internet.cliquelog"]).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                snapshot: PathBuf::from("internet.cliquelog"),
                addr: "127.0.0.1:7117".to_owned(),
                threads: exec::Threads::Auto,
                mode: cpm::Mode::Exact,
            }
        );
        let c = parse(&[
            "serve",
            "--snapshot",
            "s.snap",
            "--addr",
            "0.0.0.0:8080",
            "--threads",
            "6",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                snapshot: PathBuf::from("s.snap"),
                addr: "0.0.0.0:8080".to_owned(),
                threads: exec::Threads::Fixed(6),
                mode: cpm::Mode::Exact,
            }
        );
        assert!(parse(&["serve"]).unwrap_err().contains("--snapshot"));
        assert!(parse(&["serve", "--snapshot", "s", "--threads", "zero"])
            .unwrap_err()
            .contains("--threads"));
    }

    #[test]
    fn parses_ingest() {
        let c = parse(&[
            "ingest",
            "--input",
            "a.aslinks",
            "--input",
            "b.csv",
            "--out",
            "g.edges",
            "--map",
            "ids.txt",
            "--lenient",
            "--largest-cc",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Ingest {
                inputs: vec![PathBuf::from("a.aslinks"), PathBuf::from("b.csv")],
                format: None,
                out: Some(PathBuf::from("g.edges")),
                check: false,
                map: Some(PathBuf::from("ids.txt")),
                lenient: true,
                largest_cc: true,
                json: false,
                deadline: None,
            }
        );
        let c = parse(&[
            "ingest", "--input", "a", "--check", "--format", "dimes", "--json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Ingest {
                inputs: vec![PathBuf::from("a")],
                format: Some(ingest::Format::Dimes),
                out: None,
                check: true,
                map: None,
                lenient: false,
                largest_cc: false,
                json: true,
                deadline: None,
            }
        );
        // `auto` is the explicit spelling of the default.
        assert!(matches!(
            parse(&["ingest", "--input", "a", "--check", "--format", "auto"]).unwrap(),
            Command::Ingest { format: None, .. }
        ));
        assert!(parse(&["ingest", "--check"])
            .unwrap_err()
            .contains("--input"));
        assert!(parse(&["ingest", "--input", "a"])
            .unwrap_err()
            .contains("--out <edges> or --check"));
        assert!(parse(&["ingest", "--input", "a", "--out", "o", "--check"])
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(
            parse(&["ingest", "--input", "a", "--check", "--format", "xml"])
                .unwrap_err()
                .contains("--format")
        );
    }

    #[test]
    fn parses_communities() {
        let c = parse(&["communities", "--input", "g.txt", "--k", "4"]).unwrap();
        assert_eq!(
            c,
            Command::Communities {
                input: PathBuf::from("g.txt"),
                k: Some(4),
                all_k: false,
                mode: cpm::Mode::Exact,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deadline: None,
                pipeline: cpm::Pipeline::Fused,
                deprecated_sweep: None,
            }
        );
        let c = parse(&["communities", "--input", "g.txt", "--all-k"]).unwrap();
        assert!(matches!(c, Command::Communities { all_k: true, .. }));
    }

    #[test]
    fn parses_kernel_flag() {
        for (name, want) in [
            ("auto", cliques::Kernel::Auto),
            ("bitset", cliques::Kernel::Bitset),
            ("merge", cliques::Kernel::Merge),
        ] {
            let c = parse(&[
                "communities",
                "--input",
                "g.txt",
                "--k",
                "3",
                "--kernel",
                name,
            ])
            .unwrap();
            assert!(matches!(c, Command::Communities { kernel, .. } if kernel == want));
        }
        assert!(parse(&[
            "communities",
            "--input",
            "g.txt",
            "--k",
            "3",
            "--kernel",
            "quantum"
        ])
        .is_err());
    }

    #[test]
    fn parses_threads_flag() {
        for (name, want) in [
            ("auto", exec::Threads::Auto),
            ("1", exec::Threads::Fixed(1)),
            ("4", exec::Threads::Fixed(4)),
        ] {
            let c = parse(&[
                "communities",
                "--input",
                "g.txt",
                "--k",
                "3",
                "--threads",
                name,
            ])
            .unwrap();
            assert!(matches!(c, Command::Communities { threads, .. } if threads == want));
            let c = parse(&[
                "stream-percolate",
                "--input",
                "g.txt",
                "--all-k",
                "--threads",
                name,
            ])
            .unwrap();
            assert!(matches!(c, Command::StreamPercolate { threads, .. } if threads == want));
        }
        for bad in ["0", "-1", "many"] {
            assert!(parse(&[
                "communities",
                "--input",
                "g.txt",
                "--k",
                "3",
                "--threads",
                bad
            ])
            .is_err());
        }
    }

    #[test]
    fn deprecated_sweep_flag_is_accepted_and_recorded() {
        // Any value parses — the flag is a warned-about no-op now.
        for v in ["fused", "legacy", "quantum"] {
            let c = parse(&["communities", "--input", "g.txt", "--k", "3", "--sweep", v]).unwrap();
            assert!(
                matches!(c, Command::Communities { ref deprecated_sweep, .. }
                    if deprecated_sweep.as_deref() == Some(v))
            );
        }
        let c = parse(&["communities", "--input", "g.txt", "--k", "3"]).unwrap();
        assert!(matches!(
            c,
            Command::Communities {
                pipeline: cpm::Pipeline::Fused,
                deprecated_sweep: None,
                ..
            }
        ));
    }

    #[test]
    fn communities_validation() {
        assert!(parse(&["communities", "--input", "g.txt"]).is_err());
        assert!(parse(&["communities", "--input", "g.txt", "--k", "1"]).is_err());
        assert!(parse(&["communities", "--input", "g.txt", "--k", "3", "--all-k"]).is_err());
        assert!(parse(&["communities", "--k", "3"]).is_err());
    }

    #[test]
    fn parses_tree_defaults() {
        let c = parse(&["tree", "--input", "g.txt"]).unwrap();
        assert_eq!(
            c,
            Command::Tree {
                input: PathBuf::from("g.txt"),
                min_k: 2
            }
        );
    }

    #[test]
    fn parses_generate() {
        let c = parse(&["generate", "--scale", "tiny", "--out", "d"]).unwrap();
        assert_eq!(
            c,
            Command::Generate {
                scale: "tiny".into(),
                seed: 42,
                out: PathBuf::from("d")
            }
        );
        assert!(parse(&["generate", "--scale", "huge", "--out", "d"]).is_err());
        assert!(parse(&["generate", "--scale", "tiny"]).is_err());
    }

    #[test]
    fn parses_rewire() {
        let c = parse(&["rewire", "--input", "a", "--output", "b", "--swaps", "99"]).unwrap();
        assert_eq!(
            c,
            Command::Rewire {
                input: PathBuf::from("a"),
                output: PathBuf::from("b"),
                swaps: Some(99),
                seed: 42
            }
        );
        assert!(parse(&["rewire", "--input", "a"]).is_err());
    }

    #[test]
    fn parses_stream_percolate() {
        let c = parse(&["stream-percolate", "--input", "g.txt", "--k", "4"]).unwrap();
        assert_eq!(
            c,
            Command::StreamPercolate {
                input: Some(PathBuf::from("g.txt")),
                log: None,
                k: Some(4),
                all_k: false,
                mode: cpm::Mode::Exact,
                deprecated_approx: false,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deadline: None,
                deprecated_sweep: None,
            }
        );
        let c = parse(&["stream-percolate", "--log", "c.log", "--all-k"]).unwrap();
        assert!(matches!(
            c,
            Command::StreamPercolate {
                input: None,
                all_k: true,
                ..
            }
        ));
        let c = parse(&[
            "stream-percolate",
            "--input",
            "g.txt",
            "--k",
            "3",
            "--approx",
        ])
        .unwrap();
        assert!(matches!(
            c,
            Command::StreamPercolate {
                mode: cpm::Mode::Almost,
                deprecated_approx: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_mode_flag() {
        for (cmd, tail) in [
            ("communities", &["--input", "g.txt", "--k", "4"][..]),
            ("stream-percolate", &["--input", "g.txt", "--all-k"][..]),
            ("serve", &["--snapshot", "s.snap"][..]),
        ] {
            let mut base = vec![cmd];
            base.extend_from_slice(tail);
            for (value, want) in [("exact", cpm::Mode::Exact), ("almost", cpm::Mode::Almost)] {
                let mut args = base.clone();
                args.extend_from_slice(&["--mode", value]);
                let got = match parse(&args).unwrap() {
                    Command::Communities { mode, .. }
                    | Command::StreamPercolate { mode, .. }
                    | Command::Serve { mode, .. } => mode,
                    other => panic!("unexpected parse of {args:?}: {other:?}"),
                };
                assert_eq!(got, want, "{args:?}");
            }
            // Default is exact, and garbage is rejected with context.
            let got = match parse(&base).unwrap() {
                Command::Communities { mode, .. }
                | Command::StreamPercolate { mode, .. }
                | Command::Serve { mode, .. } => mode,
                other => panic!("unexpected parse of {base:?}: {other:?}"),
            };
            assert_eq!(got, cpm::Mode::Exact, "{base:?}");
            let mut args = base.clone();
            args.extend_from_slice(&["--mode", "fuzzy"]);
            assert!(parse(&args).unwrap_err().contains("bad --mode"), "{args:?}");
        }
    }

    #[test]
    fn stream_percolate_validation() {
        // Needs exactly one source and exactly one of --k / --all-k.
        assert!(parse(&["stream-percolate", "--k", "3"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--log", "b", "--k", "3"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--k", "3", "--all-k"]).is_err());
        assert!(parse(&["stream-percolate", "--input", "a", "--k", "1"]).is_err());
        // The unified engine lifted the old single-k-only restriction:
        // the deprecated alias now composes with --all-k too...
        assert!(matches!(
            parse(&["stream-percolate", "--input", "a", "--all-k", "--approx"]).unwrap(),
            Command::StreamPercolate {
                mode: cpm::Mode::Almost,
                ..
            }
        ));
        // ...but mixing the old and new spellings is ambiguous.
        let err = parse(&[
            "stream-percolate",
            "--input",
            "a",
            "--k",
            "3",
            "--approx",
            "--mode",
            "exact",
        ])
        .unwrap_err();
        assert!(err.contains("deprecated alias"), "{err}");
    }

    #[test]
    fn parses_clique_log() {
        let c = parse(&["clique-log", "build", "--input", "g.txt", "--out", "c.log"]).unwrap();
        assert_eq!(
            c,
            Command::CliqueLogBuild {
                input: PathBuf::from("g.txt"),
                out: PathBuf::from("c.log"),
                kernel: cliques::Kernel::Auto,
                checkpoint_cliques: 0,
                resume: false,
                deadline: None,
            }
        );
        let c = parse(&["clique-log", "info", "--log", "c.log"]).unwrap();
        assert_eq!(
            c,
            Command::CliqueLogInfo {
                log: PathBuf::from("c.log"),
            }
        );
        let c = parse(&["clique-log", "recover", "--log", "c.log"]).unwrap();
        assert_eq!(
            c,
            Command::CliqueLogRecover {
                log: PathBuf::from("c.log"),
            }
        );
        assert!(parse(&["clique-log"]).is_err());
        assert!(parse(&["clique-log", "verify"]).is_err());
        assert!(parse(&["clique-log", "build", "--input", "g.txt"]).is_err());
        assert!(parse(&["clique-log", "recover"]).is_err());
    }

    #[test]
    fn parses_build_robustness_flags() {
        let c = parse(&[
            "clique-log",
            "build",
            "--input",
            "g.txt",
            "--out",
            "c.log",
            "--checkpoint-cliques",
            "128",
            "--resume",
            "--deadline",
            "30",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::CliqueLogBuild {
                input: PathBuf::from("g.txt"),
                out: PathBuf::from("c.log"),
                kernel: cliques::Kernel::Auto,
                checkpoint_cliques: 128,
                resume: true,
                deadline: Some(30),
            }
        );
        // Cadence 0 would mean "never seal a segment": rejected.
        assert!(parse(&[
            "clique-log",
            "build",
            "--input",
            "g.txt",
            "--out",
            "c.log",
            "--checkpoint-cliques",
            "0",
        ])
        .is_err());
    }

    #[test]
    fn parses_deadline_flag() {
        for cmd in [
            vec!["communities", "--input", "g.txt", "--all-k"],
            vec!["stream-percolate", "--input", "g.txt", "--all-k"],
        ] {
            let mut with = cmd.clone();
            with.extend(["--deadline", "120"]);
            match parse(&with).unwrap() {
                Command::Communities { deadline, .. }
                | Command::StreamPercolate { deadline, .. } => assert_eq!(deadline, Some(120)),
                other => panic!("unexpected command {other:?}"),
            }
            match parse(&cmd).unwrap() {
                Command::Communities { deadline, .. }
                | Command::StreamPercolate { deadline, .. } => assert_eq!(deadline, None),
                other => panic!("unexpected command {other:?}"),
            }
        }
        assert!(parse(&[
            "communities",
            "--input",
            "g.txt",
            "--all-k",
            "--deadline",
            "soon"
        ])
        .is_err());
    }

    #[test]
    fn end_to_end_streaming_pipeline() {
        let dir = std::env::temp_dir().join(format!("kclique_cli_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("toy.edges");
        std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n").unwrap();

        let log = dir.join("toy.cliquelog");
        Command::CliqueLogBuild {
            input: edges.clone(),
            out: log.clone(),
            kernel: cliques::Kernel::Bitset,
            checkpoint_cliques: 0,
            resume: false,
            deadline: None,
        }
        .run()
        .unwrap();
        Command::CliqueLogInfo { log: log.clone() }.run().unwrap();
        // Recovering a healthy finished log is a no-op.
        Command::CliqueLogRecover { log: log.clone() }
            .run()
            .unwrap();
        Command::CliqueLogInfo { log: log.clone() }.run().unwrap();
        for (input, log_arg) in [(Some(edges.clone()), None), (None, Some(log.clone()))] {
            Command::StreamPercolate {
                input: input.clone(),
                log: log_arg.clone(),
                k: Some(3),
                all_k: false,
                mode: cpm::Mode::Exact,
                deprecated_approx: false,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deadline: None,
                deprecated_sweep: None,
            }
            .run()
            .unwrap();
            Command::StreamPercolate {
                input,
                log: log_arg,
                k: None,
                all_k: true,
                mode: cpm::Mode::Exact,
                deprecated_approx: false,
                kernel: cliques::Kernel::Merge,
                threads: exec::Threads::Fixed(2),
                deadline: None,
                deprecated_sweep: Some("legacy".into()),
            }
            .run()
            .unwrap();
        }
        Command::StreamPercolate {
            input: Some(edges),
            log: None,
            k: Some(3),
            all_k: false,
            mode: cpm::Mode::Almost,
            deprecated_approx: false,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deadline: None,
            deprecated_sweep: None,
        }
        .run()
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_deadline_interrupts_with_resumable_exit_code() {
        let dir = std::env::temp_dir().join(format!("kclique_cli_deadline_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("toy.edges");
        std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n3 4\n2 4\n").unwrap();
        let log = dir.join("toy.cliquelog");

        // A zero deadline trips before the first clique: the build must
        // stop, seal a valid (empty) log, and report exit code 75.
        let err = Command::CliqueLogBuild {
            input: edges.clone(),
            out: log.clone(),
            kernel: cliques::Kernel::Auto,
            checkpoint_cliques: 2,
            resume: false,
            deadline: Some(0),
        }
        .run()
        .unwrap_err();
        assert_eq!(err.code, EXIT_INTERRUPTED);
        assert!(err.message.contains("--resume"), "{err}");

        // The sealed log is valid and resumable: a deadline-free resume
        // completes it, and a replay then matches the live graph.
        Command::CliqueLogBuild {
            input: edges.clone(),
            out: log.clone(),
            kernel: cliques::Kernel::Auto,
            checkpoint_cliques: 2,
            resume: true,
            deadline: None,
        }
        .run()
        .unwrap();
        Command::StreamPercolate {
            input: None,
            log: Some(log),
            k: None,
            all_k: true,
            mode: cpm::Mode::Exact,
            deprecated_approx: false,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deadline: None,
            deprecated_sweep: None,
        }
        .run()
        .unwrap();

        // The interruption exit code also reaches the in-memory
        // commands (which have nothing durable to resume).
        let err = Command::Communities {
            input: edges.clone(),
            k: None,
            all_k: true,
            mode: cpm::Mode::Exact,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deadline: Some(0),
            pipeline: cpm::Pipeline::Fused,
            deprecated_sweep: None,
        }
        .run()
        .unwrap_err();
        assert_eq!(err.code, EXIT_INTERRUPTED);
        let err = Command::StreamPercolate {
            input: Some(edges),
            log: None,
            k: Some(3),
            all_k: false,
            mode: cpm::Mode::Exact,
            deprecated_approx: false,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deadline: Some(0),
            deprecated_sweep: None,
        }
        .run()
        .unwrap_err();
        assert_eq!(err.code, EXIT_INTERRUPTED);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_log_reports_corrupt_input_and_recover_fixes_it() {
        let dir = std::env::temp_dir().join(format!("kclique_cli_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("toy.edges");
        std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n").unwrap();
        let log = dir.join("toy.cliquelog");
        Command::CliqueLogBuild {
            input: edges,
            out: log.clone(),
            kernel: cliques::Kernel::Auto,
            checkpoint_cliques: 1,
            resume: false,
            deadline: None,
        }
        .run()
        .unwrap();

        // Tear the log the way a crash would: drop the tail.
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 5]).unwrap();

        for cmd in [
            Command::CliqueLogInfo { log: log.clone() },
            Command::StreamPercolate {
                input: None,
                log: Some(log.clone()),
                k: Some(3),
                all_k: false,
                mode: cpm::Mode::Exact,
                deprecated_approx: false,
                kernel: cliques::Kernel::Auto,
                threads: exec::Threads::Auto,
                deadline: None,
                deprecated_sweep: None,
            },
        ] {
            let err = cmd.run().unwrap_err();
            assert_eq!(err.code, EXIT_CORRUPT_INPUT, "{err}");
            assert!(err.message.contains("recover"), "not actionable: {err}");
        }

        // Recovery salvages the intact prefix; info works again.
        Command::CliqueLogRecover { log: log.clone() }
            .run()
            .unwrap();
        Command::CliqueLogInfo { log }.run().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_command() {
        assert!(parse(&["frobnicate"]).is_err());
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_generate_and_analyze() {
        let dir = std::env::temp_dir().join(format!("kclique_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Command::Generate {
            scale: "tiny".into(),
            seed: 1,
            out: dir.clone(),
        }
        .run()
        .unwrap();
        Command::Analyze {
            dataset: dir.clone(),
        }
        .run()
        .unwrap();
        // And the plain-graph commands work on the written edge list.
        let edges = dir.join("topology.edges");
        Command::Stats {
            input: edges.clone(),
        }
        .run()
        .unwrap();
        Command::Communities {
            input: edges.clone(),
            k: Some(3),
            all_k: false,
            mode: cpm::Mode::Exact,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deadline: None,
            pipeline: cpm::Pipeline::Fused,
            deprecated_sweep: None,
        }
        .run()
        .unwrap();
        Command::Communities {
            input: edges.clone(),
            k: None,
            all_k: true,
            mode: cpm::Mode::Exact,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Fixed(2),
            deadline: None,
            pipeline: cpm::Pipeline::Fused,
            deprecated_sweep: Some("legacy".into()),
        }
        .run()
        .unwrap();
        // A generous (never-expiring) deadline must not change the
        // single-k output path's behaviour, only its engine.
        Command::Communities {
            input: edges.clone(),
            k: Some(3),
            all_k: false,
            mode: cpm::Mode::Exact,
            kernel: cliques::Kernel::Auto,
            threads: exec::Threads::Auto,
            deadline: Some(3600),
            pipeline: cpm::Pipeline::Fused,
            deprecated_sweep: None,
        }
        .run()
        .unwrap();
        Command::Baselines {
            input: edges.clone(),
        }
        .run()
        .unwrap();
        let rewired = dir.join("null.edges");
        Command::Rewire {
            input: edges,
            output: rewired.clone(),
            swaps: Some(500),
            seed: 1,
        }
        .run()
        .unwrap();
        assert!(rewired.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_path() {
        let err = Command::Stats {
            input: PathBuf::from("/no/such/file.edges"),
        }
        .run()
        .unwrap_err();
        assert!(err.message.contains("/no/such/file.edges"));
        // A missing file is a generic failure, not corrupt input.
        assert_eq!(err.code, 1);
    }
}
