//! `kclique-cli` entry point; all logic lives in the library for
//! testability.

use kclique_cli::Command;

fn main() {
    let command = Command::parse(std::env::args().skip(1)).unwrap_or_else(|msg| {
        eprintln!("error: {msg}\n");
        eprint!("{}", kclique_cli::USAGE);
        std::process::exit(kclique_cli::EXIT_USAGE);
    });
    if let Err(failure) = command.run() {
        eprintln!("error: {failure}");
        std::process::exit(failure.code);
    }
}
