//! Binary-level contract tests for the `serve` verb — exit codes,
//! SIGINT semantics, and the `--sweep` deprecation warning's stream.
//!
//! These spawn the real `kclique-cli` executable so they observe what a
//! shell observes: process exit codes, stdout vs stderr separation, and
//! signal handling.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kclique-cli"))
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kclique_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A clique log for the triangle-chain fixture graph, built through the
/// real `clique-log build` verb.
fn fixture_log(name: &str) -> PathBuf {
    let dir = tmp_dir();
    let edges = dir.join(format!("{name}.edges"));
    std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n2 4\n3 4\n").expect("write edges");
    let log = dir.join(format!("{name}.cliquelog"));
    let status = bin()
        .args(["clique-log", "build", "--input"])
        .arg(&edges)
        .arg("--out")
        .arg(&log)
        .status()
        .expect("spawn clique-log build");
    assert!(status.success(), "clique-log build failed");
    log
}

fn sigint(child: &Child) {
    let status = Command::new("kill")
        .arg("-INT")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -INT failed");
}

fn wait_with_deadline(mut child: Child, deadline: Duration) -> std::process::Output {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("wait_with_output"),
            None if start.elapsed() > deadline => {
                let _ = child.kill();
                panic!("child did not exit within {deadline:?}");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn missing_snapshot_flag_exits_2() {
    let output = bin().arg("serve").output().expect("spawn");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--snapshot"), "{stderr}");
}

#[test]
fn corrupt_snapshot_exits_65() {
    let junk = tmp_dir().join("junk.snapshot");
    std::fs::write(&junk, "this is neither a clique log nor a snapshot").unwrap();
    let output = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--snapshot"])
        .arg(&junk)
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(65), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn missing_snapshot_file_exits_1() {
    let output = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--snapshot",
            "/no/such/snapshot",
        ])
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
}

#[test]
fn sigint_during_startup_exits_75() {
    let log = fixture_log("startup75");
    let child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--snapshot"])
        .arg(&log)
        .env("KCLIQUE_SERVE_STARTUP_PAUSE_MS", "30000")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    // The child is parked in the startup pause; the snapshot load it
    // never got to starts by checking the (now tripped) token.
    std::thread::sleep(Duration::from_millis(300));
    sigint(&child);
    let output = wait_with_deadline(child, Duration::from_secs(30));
    assert_eq!(output.status.code(), Some(75), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");
}

#[test]
fn sigint_while_serving_drains_and_exits_0() {
    let log = fixture_log("drain0");
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--snapshot"])
        .arg(&log)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The daemon prints its bound address once it is accepting.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serving line");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in {line:?}"));

    // One real query proves it serves before we stop it.
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write healthz");
    let mut reply = String::new();
    conn.read_to_string(&mut reply).expect("read healthz");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("\"status\":\"ok\""), "{reply}");
    drop(conn);

    sigint(&child);
    let output = wait_with_deadline(child, Duration::from_secs(30));
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("shutdown"), "{rest}");
}

#[test]
fn sweep_deprecation_warns_on_stderr_not_stdout() {
    let dir = tmp_dir();
    let edges = dir.join("sweep.edges");
    std::fs::write(&edges, "0 1\n0 2\n1 2\n").unwrap();
    let output = bin()
        .args(["communities", "--k", "2", "--sweep", "legacy", "--input"])
        .arg(&edges)
        .output()
        .expect("spawn");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--sweep legacy is deprecated"),
        "warning must go to stderr: {stderr}"
    );
    assert!(
        !stdout.contains("deprecated"),
        "warning leaked into stdout (breaks piped output): {stdout}"
    );
    // The command's actual output still lands on stdout.
    assert!(stdout.contains("communities"), "{stdout}");
}
