//! Binary-level contract tests for the `ingest` verb: exit codes,
//! stdout/stderr separation, the `--check` dry run, and the end-to-end
//! handoff into `communities`.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kclique-cli"))
}

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/corpus")
        .join(name)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kclique_cli_ingest_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn merge_ingest_feeds_communities_end_to_end() {
    let dir = tmp_dir("e2e");
    let merged = dir.join("merged.edges");
    let map = dir.join("merged.map");
    let output = bin()
        .args(["ingest", "--largest-cc", "--input"])
        .arg(corpus("valid.edges"))
        .arg("--input")
        .arg(corpus("valid.aslinks"))
        .arg("--input")
        .arg(corpus("valid.dimes"))
        .arg("--input")
        .arg(corpus("merge_extra.edges"))
        .arg("--out")
        .arg(&merged)
        .arg("--map")
        .arg(&map)
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(0), "{output:?}");

    // Stdout carries only the one summary line; the counters go to
    // stderr so piped output stays clean.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stdout.starts_with("wrote 7 ASes / 10 links to "),
        "{stdout}"
    );
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    assert!(stderr.contains("cleanup: 25 raw records"), "{stderr}");
    assert!(
        stderr.contains("largest CC filter    dropped 9 nodes, 11 links"),
        "{stderr}"
    );

    // The id map pins the internal → AS-number table.
    let map_text = std::fs::read_to_string(&map).expect("map file");
    assert!(
        map_text.starts_with("# internal_id as_number\n0 1239\n1 3356\n"),
        "{map_text}"
    );

    // The written graph is a first-class citizen of the pipeline.
    let output = bin()
        .args(["communities", "--k", "3", "--input"])
        .arg(&merged)
        .output()
        .expect("spawn communities");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("communities"), "{stdout}");
}

#[test]
fn corrupt_input_exits_65_with_position_and_writes_nothing() {
    let dir = tmp_dir("corrupt");
    let out = dir.join("never.edges");
    let output = bin()
        .args(["ingest", "--input"])
        .arg(corpus("bad_as.edges"))
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(65), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("bad_as.edges:2:3"), "{stderr}");
    assert!(stderr.contains("\"three\""), "{stderr}");
    assert!(
        !out.exists(),
        "a failed ingest must not leave an output file"
    );
}

#[test]
fn failed_map_write_leaves_no_out_file() {
    let dir = tmp_dir("atomic");
    let out = dir.join("graph.edges");
    let map = dir.join("no/such/dir/graph.map");
    let output = bin()
        .args(["ingest", "--input"])
        .arg(corpus("valid.edges"))
        .arg("--out")
        .arg(&out)
        .arg("--map")
        .arg(&map)
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
    assert!(
        !out.exists(),
        "a failed run must not leave a partial output behind"
    );
    assert!(
        !dir.join("graph.edges.tmp").exists(),
        "staging files are cleaned up on failure"
    );
}

#[test]
fn lenient_mode_salvages_the_same_input() {
    let dir = tmp_dir("lenient");
    let out = dir.join("salvaged.edges");
    let output = bin()
        .args(["ingest", "--lenient", "--input"])
        .arg(corpus("bad_as.edges"))
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("skipped 1: bad AS number"), "{stderr}");
    let written = std::fs::read_to_string(&out).expect("salvaged graph");
    assert!(written.contains("nodes: 4"), "{written}");
}

#[test]
fn check_is_a_dry_run_on_stdout() {
    let output = bin()
        .args(["ingest", "--check", "--input"])
        .arg(corpus("valid.aslinks"))
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The report IS the product, so it lands on stdout.
    assert!(stdout.contains("6 records, 8 edges emitted"), "{stdout}");
    assert!(stdout.contains("cleanup: 8 raw records"), "{stdout}");
    assert!(output.stderr.is_empty(), "{output:?}");

    // And as machine-readable JSON on request.
    let output = bin()
        .args(["ingest", "--check", "--json", "--input"])
        .arg(corpus("valid.aslinks"))
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.starts_with("{\"sources\":["), "{stdout}");
    assert!(stdout.contains("\"edges_emitted\":8"), "{stdout}");
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        vec!["ingest", "--out", "/tmp/x.edges"], // no --input
        vec!["ingest", "--input", "/tmp/x"],     // no --out/--check
        vec!["ingest", "--input", "/tmp/x", "--check", "--out", "/tmp/y"], // both
        vec![
            "ingest", "--input", "/tmp/x", "--check", "--format", "banana",
        ],
        // --input swallowing the next flag, or trailing with no value,
        // is a usage error, not a file named "--check".
        vec!["ingest", "--input", "--check", "--out", "/tmp/x.edges"],
        vec!["ingest", "--check", "--input"],
    ] {
        let output = bin().args(&args).output().expect("spawn ingest");
        assert_eq!(output.status.code(), Some(2), "{args:?}: {output:?}");
    }
}

#[test]
fn missing_input_file_exits_1() {
    let output = bin()
        .args(["ingest", "--check", "--input", "/no/such/file.edges"])
        .output()
        .expect("spawn ingest");
    assert_eq!(output.status.code(), Some(1), "{output:?}");
}
