//! Regression tests for the consolidated legacy-flag stderr helper:
//! every notice (`--sweep`, `--approx`, `--pipeline staged`) goes to
//! stderr, and stdout stays **byte-identical** to a notice-free run —
//! piping the command's output must never pick up a warning.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kclique-cli"))
}

fn fixture_edges(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kclique_cli_legacy_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let edges = dir.join(format!("{name}.edges"));
    std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n2 4\n3 4\n").expect("write edges");
    edges
}

fn run(args: &[&str], edges: &PathBuf) -> std::process::Output {
    let output = bin()
        .args(args)
        .arg("--input")
        .arg(edges)
        .output()
        .expect("spawn kclique-cli");
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    output
}

/// All three notices at once: one stderr block, stdout byte-equal to
/// the clean invocation.
#[test]
fn legacy_flag_notices_never_touch_stdout() {
    let edges = fixture_edges("combo");
    let clean = run(&["communities", "--k", "3"], &edges);
    let warned = run(
        &[
            "communities",
            "--k",
            "3",
            "--sweep",
            "legacy",
            "--pipeline",
            "staged",
        ],
        &edges,
    );
    assert_eq!(
        clean.stdout, warned.stdout,
        "legacy-flag notices changed stdout bytes"
    );
    assert!(clean.stderr.is_empty(), "clean run must not warn");
    let stderr = String::from_utf8_lossy(&warned.stderr);
    assert!(stderr.contains("--sweep legacy is deprecated"), "{stderr}");
    assert!(stderr.contains("--pipeline staged"), "{stderr}");
    // Every line of the block is a warning, nothing else.
    assert!(
        stderr.lines().all(|l| l.starts_with("warning: ")),
        "{stderr}"
    );
}

/// `--approx` routes through the same helper on the streaming verb.
#[test]
fn approx_alias_warns_on_stderr_only() {
    let edges = fixture_edges("approx");
    let clean = run(
        &["stream-percolate", "--k", "3", "--mode", "almost"],
        &edges,
    );
    let warned = run(&["stream-percolate", "--k", "3", "--approx"], &edges);
    assert_eq!(clean.stdout, warned.stdout, "--approx changed stdout bytes");
    let stderr = String::from_utf8_lossy(&warned.stderr);
    assert!(stderr.contains("--approx is deprecated"), "{stderr}");
}

/// The fused default and the staged escape hatch print byte-identical
/// communities — single-k and the all-k table.
#[test]
fn fused_and_staged_stdout_agree() {
    let edges = fixture_edges("pipelines");
    for (sel, rest) in [("--k", "3"), ("--all-k", "")] {
        for mode in ["exact", "almost"] {
            let mut base = vec!["communities", sel];
            if !rest.is_empty() {
                base.push(rest);
            }
            base.extend(["--mode", mode]);
            let fused = run(&base, &edges);
            let mut staged_args = base.clone();
            staged_args.extend(["--pipeline", "staged"]);
            let staged = run(&staged_args, &edges);
            assert_eq!(
                fused.stdout, staged.stdout,
                "fused vs staged stdout diverged ({sel} {mode})"
            );
        }
    }
}
