//! Error types.

use std::fmt;

/// Error returned when parsing an edge-list document fails.
///
/// Produced by [`crate::io::parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGraphError {
    line: usize,
    kind: ParseGraphErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseGraphErrorKind {
    /// The line did not contain exactly two whitespace-separated fields.
    FieldCount(usize),
    /// A field was not a valid node id.
    BadNodeId(String),
}

impl ParseGraphError {
    pub(crate) fn field_count(line: usize, got: usize) -> Self {
        ParseGraphError {
            line,
            kind: ParseGraphErrorKind::FieldCount(got),
        }
    }

    pub(crate) fn bad_node_id(line: usize, field: &str) -> Self {
        ParseGraphError {
            line,
            kind: ParseGraphErrorKind::BadNodeId(field.to_owned()),
        }
    }

    /// 1-based line number at which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseGraphErrorKind::FieldCount(got) => write!(
                f,
                "line {}: expected 2 whitespace-separated node ids, found {got} fields",
                self.line
            ),
            ParseGraphErrorKind::BadNodeId(field) => {
                write!(f, "line {}: invalid node id {field:?}", self.line)
            }
        }
    }
}

impl std::error::Error for ParseGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = ParseGraphError::bad_node_id(7, "x9");
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("x9"));
        assert_eq!(e.line(), 7);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ParseGraphError>();
    }
}
