//! Degeneracy ordering and core numbers.
//!
//! The degeneracy ordering (Matula–Beck bucket peeling) serves two masters in
//! this workspace: it is the outer-loop order of the Eppstein–Löffler–Strash
//! variant of Bron–Kerbosch in the `cliques` crate, and its per-node peel
//! values *are* the k-core decomposition (Seidman 1983) used as a baseline.

use crate::graph::{Graph, NodeId};

/// Result of the degeneracy / k-core peeling of a graph.
///
/// Produced by [`degeneracy_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degeneracy {
    /// Nodes in peel order: each node has the minimum remaining degree at
    /// the moment it is removed.
    pub order: Vec<NodeId>,
    /// `rank[v]` is the position of `v` in [`Degeneracy::order`].
    pub rank: Vec<u32>,
    /// `core_number[v]` is the largest `k` such that `v` belongs to the
    /// k-core (the maximal subgraph of minimum degree `k`).
    pub core_number: Vec<u32>,
    /// The graph degeneracy: `max(core_number)` (0 for an empty graph).
    pub degeneracy: u32,
}

/// Computes a degeneracy ordering and all core numbers in `O(n + m)` using
/// bucketed min-degree peeling.
///
/// # Example
///
/// ```
/// use asgraph::{Graph, ordering::degeneracy_order};
///
/// // A triangle with a pendant vertex: degeneracy 2, pendant core 1.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let d = degeneracy_order(&g);
/// assert_eq!(d.degeneracy, 2);
/// assert_eq!(d.core_number[3], 1);
/// assert_eq!(d.core_number[0], 2);
/// ```
pub fn degeneracy_order(g: &Graph) -> Degeneracy {
    let n = g.node_count();
    if n == 0 {
        return Degeneracy {
            order: Vec::new(),
            rank: Vec::new(),
            core_number: Vec::new(),
            degeneracy: 0,
        };
    }

    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as NodeId)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // bucket[d] holds nodes of current degree d.
    let mut bucket_heads: Vec<Vec<NodeId>> = vec![Vec::new(); max_degree + 1];
    for v in 0..n {
        bucket_heads[degree[v]].push(v as NodeId);
    }

    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut rank = vec![0u32; n];
    let mut core_number = vec![0u32; n];
    let mut current_core = 0u32;
    let mut cursor = 0usize; // lowest possibly-non-empty bucket

    for step in 0..n {
        // Find the non-empty bucket with the smallest degree, skipping
        // stale entries (nodes whose degree has since decreased or that
        // were already removed).
        let v = loop {
            while cursor <= max_degree && bucket_heads[cursor].is_empty() {
                cursor += 1;
            }
            debug_assert!(cursor <= max_degree, "peeling ran out of nodes");
            let candidate = bucket_heads[cursor].pop().expect("non-empty bucket");
            let c = candidate as usize;
            if !removed[c] && degree[c] == cursor {
                break candidate;
            }
            // Stale entry: the node lives in a lower bucket now (or is
            // gone); its true bucket may be below `cursor`.
            if !removed[c] && degree[c] < cursor {
                cursor = degree[c];
            }
        };

        let vu = v as usize;
        removed[vu] = true;
        current_core = current_core.max(degree[vu] as u32);
        core_number[vu] = current_core;
        rank[vu] = step as u32;
        order.push(v);

        for &w in g.neighbors(v) {
            let wu = w as usize;
            if !removed[wu] {
                degree[wu] -= 1;
                bucket_heads[degree[wu]].push(w);
                if degree[wu] < cursor {
                    cursor = degree[wu];
                }
            }
        }
    }

    Degeneracy {
        order,
        rank,
        core_number,
        degeneracy: current_core,
    }
}

/// Nodes belonging to the `k`-core of `g` (possibly empty).
///
/// A convenience wrapper over [`degeneracy_order`]; the k-core is the
/// maximal subgraph in which every node has degree ≥ `k`.
pub fn k_core_members(g: &Graph, k: u32) -> Vec<NodeId> {
    let d = degeneracy_order(g);
    (0..g.node_count() as NodeId)
        .filter(|&v| d.core_number[v as usize] >= k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let d = degeneracy_order(&Graph::empty(0));
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
    }

    #[test]
    fn isolated_nodes() {
        let d = degeneracy_order(&Graph::empty(4));
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.order.len(), 4);
        assert!(d.core_number.iter().all(|&c| c == 0));
    }

    #[test]
    fn clique_degeneracy() {
        let g = Graph::complete(6);
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core_number.iter().all(|&c| c == 5));
    }

    #[test]
    fn path_degeneracy_is_one() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn rank_matches_order() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let d = degeneracy_order(&g);
        for (i, &v) in d.order.iter().enumerate() {
            assert_eq!(d.rank[v as usize], i as u32);
        }
    }

    #[test]
    fn core_invariant_holds() {
        // Every node in the k-core has >= k neighbours inside the k-core.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 3), // K4 on 0..=3
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
            ],
        );
        let d = degeneracy_order(&g);
        assert_eq!(d.degeneracy, 3);
        for k in 0..=d.degeneracy {
            let members = k_core_members(&g, k);
            let inset: std::collections::HashSet<_> = members.iter().copied().collect();
            for &v in &members {
                let internal = g.neighbors(v).iter().filter(|w| inset.contains(w)).count();
                assert!(
                    internal >= k as usize,
                    "node {v} has only {internal} internal neighbours in {k}-core"
                );
            }
        }
    }

    #[test]
    fn two_core_excludes_pendants() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let members = k_core_members(&g, 2);
        assert_eq!(members, vec![0, 1, 2]);
    }
}
