//! Connected components and breadth-first search.

use crate::graph::{Graph, NodeId};

/// The partition of a graph's nodes into connected components.
///
/// Produced by [`connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `labels[v]` is the component index of node `v` (`0..count`).
    labels: Vec<u32>,
    count: usize,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Whether `u` and `v` are in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// The members of every component, indexed by component id.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.labels.iter().enumerate() {
            out[c as usize].push(v as NodeId);
        }
        out
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest_size(&self) -> usize {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.labels {
            sizes[c as usize] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// Computes the connected components of `g` with an iterative BFS.
///
/// # Example
///
/// ```
/// use asgraph::{Graph, components::connected_components};
///
/// let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
/// let cc = connected_components(&g);
/// assert_eq!(cc.count(), 3); // {0,1}, {2,3}, {4}
/// assert!(cc.same_component(0, 1));
/// assert!(!cc.same_component(1, 2));
/// ```
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

/// Whether `g` is connected. An empty graph is considered connected.
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || connected_components(g).count() == 1
}

/// BFS distances from `source`; unreachable nodes get `None`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let n = g.node_count();
    assert!(
        (source as usize) < n,
        "source {source} out of range ({n} nodes)"
    );
    let mut dist = vec![None; n];
    dist[source as usize] = Some(0);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize].expect("queued node has distance");
        for &v in g.neighbors(u) {
            if dist[v as usize].is_none() {
                dist[v as usize] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::complete(4);
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 1);
        assert_eq!(cc.largest_size(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = Graph::empty(3);
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn members_partition_nodes() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let cc = connected_components(&g);
        let members = cc.members();
        assert_eq!(members.len(), cc.count());
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(members[cc.component_of(0) as usize], vec![0, 1, 2]);
    }

    #[test]
    fn bfs_path_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_bad_source_panics() {
        let g = Graph::empty(2);
        let _ = bfs_distances(&g, 9);
    }
}
