//! Degree-preserving null models.
//!
//! To argue that detected communities reflect real organisation rather
//! than degree-sequence artefacts, compare against a *rewired* graph:
//! repeated double-edge swaps `{a,b},{c,d} → {a,d},{c,b}` preserve every
//! node's degree while destroying higher-order structure (triangles,
//! cliques, communities). The `community_significance` experiment uses
//! this to show the paper's crown/trunk/root anatomy evaporates under
//! rewiring.

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// Statistics of a rewiring run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewireReport {
    /// Swaps attempted.
    pub attempts: usize,
    /// Swaps that succeeded (no self loop / duplicate created).
    pub successes: usize,
}

/// Rewires `g` with `attempts` double-edge swaps, preserving the degree
/// sequence exactly. More attempts randomise more thoroughly; `10 × m`
/// is a common choice.
///
/// Returns the rewired graph and a report. Swaps that would create a
/// self loop or a duplicate edge are skipped (counted as failed
/// attempts), so the graph stays simple.
///
/// # Example
///
/// ```
/// use asgraph::{Graph, rewire::rewire};
/// use rand::SeedableRng;
///
/// let g = Graph::complete(6);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (h, _) = rewire(&g, 100, &mut rng);
/// // K6 is rigid (every swap would duplicate an edge)…
/// assert_eq!(h, g);
/// // …but degrees are preserved by construction either way.
/// assert_eq!(h.degrees(), g.degrees());
/// ```
pub fn rewire<R: Rng>(g: &Graph, attempts: usize, rng: &mut R) -> (Graph, RewireReport) {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut present: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let m = edges.len();
    let mut successes = 0usize;
    if m >= 2 {
        for _ in 0..attempts {
            let i = rng.random_range(0..m);
            let j = rng.random_range(0..m);
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            // Swap to {a,d}, {c,b}.
            if a == d || c == b {
                continue; // self loop
            }
            let e1 = (a.min(d), a.max(d));
            let e2 = (c.min(b), c.max(b));
            if present.contains(&e1) || present.contains(&e2) || e1 == e2 {
                continue; // duplicate
            }
            present.remove(&(a.min(b), a.max(b)));
            present.remove(&(c.min(d), c.max(d)));
            present.insert(e1);
            present.insert(e2);
            edges[i] = e1;
            edges[j] = e2;
            successes += 1;
        }
    }
    let rewired = Graph::from_edges(g.node_count(), edges);
    (
        rewired,
        RewireReport {
            attempts,
            successes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn degree_sequence(g: &Graph) -> Vec<usize> {
        g.node_ids().map(|v| g.degree(v)).collect()
    }

    #[test]
    fn degrees_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = crate::GraphBuilder::with_nodes(30);
        for u in 0..30u32 {
            for v in (u + 1)..30 {
                if (u * 7 + v * 13) % 5 == 0 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let (h, report) = rewire(&g, 10 * g.edge_count(), &mut rng);
        assert_eq!(degree_sequence(&g), degree_sequence(&h));
        assert_eq!(g.edge_count(), h.edge_count());
        assert!(report.successes > 0, "nothing rewired");
        assert_ne!(g, h, "graph unchanged after rewiring");
    }

    #[test]
    fn graph_stays_simple() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let (h, _) = rewire(&g, 200, &mut rng);
        // from_edges would have deduplicated; equal edge counts prove no
        // duplicates were produced.
        assert_eq!(h.edge_count(), g.edge_count());
        for v in h.node_ids() {
            assert!(!h.has_edge(v, v));
        }
    }

    #[test]
    fn destroys_triangles() {
        // A graph of many planted triangles loses most of them.
        let mut b = crate::GraphBuilder::new();
        for t in 0..30u32 {
            let base = 3 * t;
            b.add_edge(base, base + 1);
            b.add_edge(base + 1, base + 2);
            b.add_edge(base + 2, base);
        }
        let g = b.build();
        let before = crate::metrics::triangle_count(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let (h, _) = rewire(&g, 20 * g.edge_count(), &mut rng);
        let after = crate::metrics::triangle_count(&h);
        assert!(
            after * 3 < before,
            "triangles survived rewiring: {before} -> {after}"
        );
    }

    #[test]
    fn zero_attempts_identity() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(9);
        let (h, report) = rewire(&g, 0, &mut rng);
        assert_eq!(g, h);
        assert_eq!(report.successes, 0);
    }

    #[test]
    fn tiny_graphs_are_safe() {
        let mut rng = StdRng::seed_from_u64(1);
        let (h, _) = rewire(&Graph::empty(3), 10, &mut rng);
        assert_eq!(h.edge_count(), 0);
        let g1 = Graph::from_edges(2, [(0, 1)]);
        let (h1, _) = rewire(&g1, 10, &mut rng);
        assert_eq!(g1, h1);
    }
}
