//! Node-induced subgraphs.
//!
//! The paper leans on *tag-induced subgraphs* (Palla et al., New J. Phys.
//! 2008): the subgraph induced by a tag α contains every edge whose two
//! endpoints both carry α. [`induced`] implements exactly that given the
//! node set of interest.

use crate::graph::{Graph, NodeId};

/// A node-induced subgraph together with the mapping back to the parent
/// graph's node ids.
///
/// Produced by [`induced`].
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph itself; its node `i` corresponds to
    /// `original_ids[i]` in the parent graph.
    pub graph: Graph,
    /// Sorted parent-graph ids of the subgraph's nodes.
    pub original_ids: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Maps a subgraph node id back to the parent graph.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn to_original(&self, local: NodeId) -> NodeId {
        self.original_ids[local as usize]
    }

    /// Maps a parent-graph node id into the subgraph, if present.
    pub fn to_local(&self, original: NodeId) -> Option<NodeId> {
        self.original_ids
            .binary_search(&original)
            .ok()
            .map(|i| i as NodeId)
    }
}

/// Builds the subgraph of `g` induced by `nodes`.
///
/// Duplicate ids in `nodes` are tolerated (deduplicated). Runs in
/// `O(Σ deg(v) + |nodes| log |nodes|)`.
///
/// # Panics
///
/// Panics if any id in `nodes` is out of range for `g`.
///
/// # Example
///
/// ```
/// use asgraph::{Graph, subgraph::induced};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
/// let sub = induced(&g, [0, 1, 2]);
/// assert_eq!(sub.graph.node_count(), 3);
/// assert_eq!(sub.graph.edge_count(), 2); // 0-1, 1-2 (edge 2-3 leaves the set)
/// assert_eq!(sub.to_original(0), 0);
/// ```
pub fn induced<I>(g: &Graph, nodes: I) -> InducedSubgraph
where
    I: IntoIterator<Item = NodeId>,
{
    let mut ids: Vec<NodeId> = nodes.into_iter().collect();
    ids.sort_unstable();
    ids.dedup();
    for &v in &ids {
        assert!(
            (v as usize) < g.node_count(),
            "node {v} out of range ({} nodes)",
            g.node_count()
        );
    }

    let mut local = vec![u32::MAX; g.node_count()];
    for (i, &v) in ids.iter().enumerate() {
        local[v as usize] = i as u32;
    }

    let mut b = crate::GraphBuilder::with_nodes(ids.len());
    for (i, &v) in ids.iter().enumerate() {
        for &w in g.neighbors(v) {
            let lw = local[w as usize];
            if lw != u32::MAX && (i as u32) < lw {
                b.add_edge(i as NodeId, lw);
            }
        }
    }
    InducedSubgraph {
        graph: b.build(),
        original_ids: ids,
    }
}

/// Counts the edges of `g` with both endpoints in `nodes` without
/// materialising the subgraph.
///
/// # Panics
///
/// Panics if any id is out of range.
pub fn internal_edge_count(g: &Graph, nodes: &[NodeId]) -> usize {
    let mut inset = vec![false; g.node_count()];
    for &v in nodes {
        assert!((v as usize) < g.node_count(), "node {v} out of range");
        inset[v as usize] = true;
    }
    let mut count = 0;
    for &v in nodes {
        if !inset[v as usize] {
            continue; // duplicate already processed
        }
        for &w in g.neighbors(v) {
            if inset[w as usize] && v < w {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_triangle_from_k5() {
        let g = Graph::complete(5);
        let sub = induced(&g, [1, 3, 4]);
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 3);
        assert_eq!(sub.original_ids, vec![1, 3, 4]);
    }

    #[test]
    fn mapping_round_trip() {
        let g = Graph::complete(6);
        let sub = induced(&g, [5, 2, 0]);
        for local in 0..sub.graph.node_count() as NodeId {
            let orig = sub.to_original(local);
            assert_eq!(sub.to_local(orig), Some(local));
        }
        assert_eq!(sub.to_local(3), None);
    }

    #[test]
    fn duplicates_tolerated() {
        let g = Graph::complete(4);
        let sub = induced(&g, [1, 1, 2, 2]);
        assert_eq!(sub.graph.node_count(), 2);
        assert_eq!(sub.graph.edge_count(), 1);
    }

    #[test]
    fn empty_selection() {
        let g = Graph::complete(4);
        let sub = induced(&g, []);
        assert_eq!(sub.graph.node_count(), 0);
        assert_eq!(sub.graph.edge_count(), 0);
    }

    #[test]
    fn internal_edges_match_subgraph() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let nodes = vec![0, 1, 2, 3];
        let sub = induced(&g, nodes.iter().copied());
        assert_eq!(internal_edge_count(&g, &nodes), sub.graph.edge_count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let g = Graph::empty(2);
        let _ = induced(&g, [7]);
    }
}
