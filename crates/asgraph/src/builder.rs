//! Normalising builder for [`Graph`].

use crate::graph::{Graph, NodeId};

/// Accumulates raw edges and normalises them into a simple [`Graph`].
///
/// The builder accepts edge soup in any form — duplicates, both
/// orientations, self loops — and produces a graph with deduplicated,
/// sorted adjacency. Node count grows automatically to cover the largest
/// endpoint seen, or can be fixed up-front with
/// [`GraphBuilder::with_nodes`] (it still grows if a larger endpoint
/// arrives).
///
/// # Example
///
/// ```
/// use asgraph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(2, 7);
/// b.add_edge(7, 2); // same undirected edge
/// b.add_edge(4, 4); // self loop: ignored
/// let g = b.build();
/// assert_eq!(g.node_count(), 8);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    n: usize,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that will produce a graph with at least `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            n,
            dropped_self_loops: 0,
        }
    }

    /// Creates a builder expecting roughly `m` edges (capacity hint).
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            n,
            dropped_self_loops: 0,
        }
    }

    /// Records the undirected edge `{u, v}`. Self loops are dropped
    /// (counted in [`GraphBuilder::dropped_self_loops`]); duplicates are
    /// deduplicated at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        let needed = u.max(v) as usize + 1;
        if needed > self.n {
            self.n = needed;
        }
        if u == v {
            self.dropped_self_loops += 1;
            return self;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        self
    }

    /// Records every edge from an iterator.
    pub fn add_edges<I>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
        self
    }

    /// Ensures the graph has at least `n` nodes even if some are isolated.
    pub fn reserve_nodes(&mut self, n: usize) -> &mut Self {
        if n > self.n {
            self.n = n;
        }
        self
    }

    /// Number of self loops that were dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of (not yet deduplicated) edge records.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Finalises into a [`Graph`], deduplicating edges.
    pub fn build(&self) -> Graph {
        let n = self.n;
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![0 as NodeId; edges.len() * 2];
        for &(u, v) in &edges {
            adjacency[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each neighbour list is filled in ascending order of the *other*
        // endpoint only for the `u` side; the `v` side gets sources in
        // ascending `u` order too (edges are sorted), so both sides are
        // already sorted. Sorting again defensively is cheap relative to
        // construction and guards the invariant.
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, adjacency)
    }
}

impl FromIterator<(NodeId, NodeId)> for GraphBuilder {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        let mut b = GraphBuilder::new();
        b.add_edges(iter);
        b
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    fn extend<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        self.add_edges(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_orientation() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn self_loops_dropped_and_counted() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 3);
        b.add_edge(3, 4);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn isolated_nodes_preserved() {
        let mut b = GraphBuilder::with_nodes(10);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn grows_past_reserved() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(5, 6);
        assert_eq!(b.node_count(), 7);
    }

    #[test]
    fn collect_from_iterator() {
        let b: GraphBuilder = vec![(0, 1), (1, 2)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn extend_builder() {
        let mut b = GraphBuilder::new();
        b.extend(vec![(0, 1), (2, 3)]);
        assert_eq!(b.raw_edge_count(), 2);
    }

    #[test]
    fn build_is_repeatable() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g1 = b.build();
        let g2 = b.build();
        assert_eq!(g1, g2);
    }
}
