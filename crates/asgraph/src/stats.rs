//! Whole-graph statistics used to validate topology realism.
//!
//! The substitution argument of this reproduction (DESIGN.md §1) rests
//! on the synthetic topology sharing the structural statistics of the
//! real AS graph: a heavy-tailed degree distribution (power-law exponent
//! ≈ 2.1 in the literature), high clustering concentrated on low-degree
//! nodes, and disassortative degree mixing. This module computes those
//! statistics; the `topology_validation` experiment reports them.

use crate::graph::{Graph, NodeId};

/// Degree histogram as sorted `(degree, node_count)` pairs.
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut map = std::collections::BTreeMap::new();
    for v in g.node_ids() {
        *map.entry(g.degree(v)).or_insert(0usize) += 1;
    }
    map.into_iter().collect()
}

/// Maximum-likelihood estimate of a discrete power-law exponent
/// `P(k) ∝ k^-α` for degrees `>= k_min`, using the Clauset–Shalizi–Newman
/// continuous approximation `α ≈ 1 + n / Σ ln(k_i / (k_min − ½))`.
///
/// Returns `None` if fewer than 10 nodes have degree `>= k_min` (the
/// estimate would be meaningless).
///
/// # Panics
///
/// Panics if `k_min == 0`.
pub fn power_law_alpha(g: &Graph, k_min: usize) -> Option<f64> {
    assert!(k_min > 0, "k_min must be positive");
    let tail: Vec<usize> = g
        .node_ids()
        .map(|v| g.degree(v))
        .filter(|&d| d >= k_min)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let denom: f64 = tail
        .iter()
        .map(|&d| (d as f64 / (k_min as f64 - 0.5)).ln())
        .sum();
    Some(1.0 + tail.len() as f64 / denom)
}

/// Local clustering coefficient of `v`: the fraction of its neighbour
/// pairs that are themselves connected. Degree < 2 gives 0.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Mean local clustering coefficient over all nodes (Watts–Strogatz).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    g.node_ids().map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Degree assortativity: the Pearson correlation of degrees across
/// edges (Newman 2002). Negative for the Internet AS graph
/// (hubs attach to low-degree customers). Returns `None` for graphs
/// with no edges or zero degree variance.
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    let m = g.edge_count();
    if m == 0 {
        return None;
    }
    // Single pass over edges with both orientations (standard form).
    let (mut sum_xy, mut sum_x, mut sum_x2) = (0.0f64, 0.0f64, 0.0f64);
    let mut count = 0.0f64;
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        for (a, b) in [(du, dv), (dv, du)] {
            sum_xy += a * b;
            sum_x += a;
            sum_x2 += a * a;
            count += 1.0;
        }
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var <= f64::EPSILON {
        return None;
    }
    Some((sum_xy / count - mean * mean) / var)
}

/// Average clustering restricted to nodes within a degree band — the AS
/// graph shows strong clustering for mid-degree nodes.
pub fn clustering_by_degree_band(g: &Graph, lo: usize, hi: usize) -> Option<f64> {
    let nodes: Vec<NodeId> = g
        .node_ids()
        .filter(|&v| (lo..=hi).contains(&g.degree(v)))
        .collect();
    if nodes.is_empty() {
        return None;
    }
    Some(nodes.iter().map(|&v| local_clustering(g, v)).sum::<f64>() / nodes.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_nodes() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(degree_histogram(&g), vec![(1, 3), (3, 1)]);
    }

    #[test]
    fn clique_clustering_is_one() {
        let g = Graph::complete(5);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 0), 1.0);
    }

    #[test]
    fn star_clustering_is_zero() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn star_is_disassortative() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.0, "star assortativity {r} not negative");
    }

    #[test]
    fn regular_graph_assortativity_undefined() {
        // Cycle: all degrees equal -> zero variance.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(degree_assortativity(&g), None);
        assert_eq!(degree_assortativity(&Graph::empty(3)), None);
    }

    #[test]
    fn power_law_estimate_recovers_exponent() {
        // Sample degrees from a discrete power law with alpha = 2.5 via
        // inverse CDF on a fixed seed-free deterministic sequence.
        // The continuous-approximation MLE is accurate for k_min >= ~6
        // (Clauset, Shalizi, Newman 2009), which is how the
        // topology-validation experiment calls it.
        let alpha = 2.5f64;
        let k_min = 6.0f64;
        let mut b = crate::GraphBuilder::new();
        let mut next = 0u32;
        // 3000 "stars" whose sizes follow the target distribution; the
        // hub degrees then follow it too (leaf degrees are 1 < k_min).
        for i in 0..3000 {
            let u = ((i as f64) + 0.5) / 3000.0;
            let d = (k_min * (1.0 - u).powf(-1.0 / (alpha - 1.0))).round() as usize;
            let d = d.clamp(6, 5_000);
            let hub = next;
            next += 1;
            for _ in 0..d {
                b.add_edge(hub, next);
                next += 1;
            }
        }
        let g = b.build();
        let est = power_law_alpha(&g, 6).expect("enough tail nodes");
        assert!(
            (est - alpha).abs() < 0.25,
            "estimated alpha {est}, expected ~{alpha}"
        );
    }

    #[test]
    fn power_law_needs_data() {
        let g = Graph::complete(3);
        assert_eq!(power_law_alpha(&g, 2), None);
    }

    #[test]
    fn banded_clustering() {
        let g = Graph::complete(4);
        assert_eq!(clustering_by_degree_band(&g, 3, 3), Some(1.0));
        assert_eq!(clustering_by_degree_band(&g, 10, 20), None);
    }
}
