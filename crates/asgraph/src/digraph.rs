//! Directed simple-graph substrate.
//!
//! The AS-level topology has a natural orientation — customer→provider —
//! and the CPM family has a directed variant (Palla, Farkas, Pollner,
//! Derényi, Vicsek, New J. Phys. 2007) built on *directed k-cliques*:
//! complete subgraphs whose orientation is acyclic, i.e. a transitive
//! tournament (in AS terms: a strict customer hierarchy). This module
//! provides the directed graph; `cpm::directed` runs the percolation.

use crate::graph::{Graph, NodeId};
use std::collections::HashSet;

/// An immutable directed simple graph (no self loops, no parallel
/// edges; an edge in both directions is allowed and distinct).
///
/// # Example
///
/// ```
/// use asgraph::digraph::DiGraph;
///
/// let g = DiGraph::from_arcs(3, [(0, 1), (1, 2), (0, 2)]);
/// assert!(g.has_arc(0, 1));
/// assert!(!g.has_arc(1, 0));
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.in_degree(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<usize>,
    out_adjacency: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_adjacency: Vec<NodeId>,
    arc_count: usize,
}

impl DiGraph {
    /// Builds a digraph with `n` nodes from arcs `(from, to)`.
    /// Self loops and duplicates are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_arcs<I>(n: usize, arcs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut set: HashSet<(NodeId, NodeId)> = HashSet::new();
        for (u, v) in arcs {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "arc ({u},{v}) out of range ({n} nodes)"
            );
            if u != v {
                set.insert((u, v));
            }
        }
        let mut arcs: Vec<(NodeId, NodeId)> = set.into_iter().collect();
        arcs.sort_unstable();

        let build = |n: usize, pairs: &[(NodeId, NodeId)]| {
            let mut offsets = vec![0usize; n + 1];
            for &(u, _) in pairs {
                offsets[u as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut adjacency = vec![0 as NodeId; pairs.len()];
            let mut cursor = offsets.clone();
            for &(u, v) in pairs {
                adjacency[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
            }
            for v in 0..n {
                adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
            }
            (offsets, adjacency)
        };
        let (out_offsets, out_adjacency) = build(n, &arcs);
        let mut reversed: Vec<(NodeId, NodeId)> = arcs.iter().map(|&(u, v)| (v, u)).collect();
        reversed.sort_unstable();
        let (in_offsets, in_adjacency) = build(n, &reversed);
        DiGraph {
            arc_count: arcs.len(),
            out_offsets,
            out_adjacency,
            in_offsets,
            in_adjacency,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Successors of `v` (sorted).
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_adjacency[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Predecessors of `v` (sorted).
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_adjacency[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.successors(v).len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.predecessors(v).len()
    }

    /// Whether the arc `u → v` exists.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// The underlying undirected graph (each arc becomes an edge;
    /// anti-parallel pairs collapse to one edge).
    pub fn to_undirected(&self) -> Graph {
        let mut b = crate::GraphBuilder::with_nodes(self.node_count());
        for u in 0..self.node_count() as NodeId {
            for &v in self.successors(u) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Orients an undirected graph by a total order on nodes: each edge
    /// points from the smaller `rank` to the larger. With `rank[v] =
    /// degree(v)` (ties by id) this is the customer→provider proxy used
    /// by the directed-CPM experiment.
    ///
    /// # Panics
    ///
    /// Panics if `rank.len() != g.node_count()`.
    pub fn orient_by_rank(g: &Graph, rank: &[u64]) -> DiGraph {
        assert_eq!(rank.len(), g.node_count(), "rank length");
        let arcs = g.edges().map(|(u, v)| {
            let key_u = (rank[u as usize], u);
            let key_v = (rank[v as usize], v);
            if key_u < key_v {
                (u, v)
            } else {
                (v, u)
            }
        });
        DiGraph::from_arcs(g.node_count(), arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_are_directional() {
        let g = DiGraph::from_arcs(3, [(0, 1), (1, 2)]);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.predecessors(2), &[1]);
        assert_eq!(g.successors(1), &[2]);
    }

    #[test]
    fn antiparallel_arcs_are_distinct() {
        let g = DiGraph::from_arcs(2, [(0, 1), (1, 0)]);
        assert_eq!(g.arc_count(), 2);
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(1, 0));
        assert_eq!(g.to_undirected().edge_count(), 1);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = DiGraph::from_arcs(3, [(0, 0), (0, 1), (0, 1)]);
        assert_eq!(g.arc_count(), 1);
    }

    #[test]
    fn orientation_by_rank() {
        let und = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        // rank: 2 < 0 < 1 — so arcs 2->0, 2->1, 0->1.
        let g = DiGraph::orient_by_rank(&und, &[1, 2, 0]);
        assert!(g.has_arc(2, 0));
        assert!(g.has_arc(2, 1));
        assert!(g.has_arc(0, 1));
        assert_eq!(g.arc_count(), 3);
    }

    #[test]
    fn orientation_is_acyclic() {
        let und = Graph::complete(5);
        let rank: Vec<u64> = (0..5).collect();
        let g = DiGraph::orient_by_rank(&und, &rank);
        // Every arc goes from smaller to larger id: topological by id.
        for u in 0..5u32 {
            for &v in g.successors(u) {
                assert!(u < v);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_arc_panics() {
        let _ = DiGraph::from_arcs(2, [(0, 5)]);
    }
}
