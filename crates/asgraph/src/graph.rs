//! The CSR graph type.

use std::fmt;

/// Index of a node inside a [`Graph`].
///
/// Nodes are always the dense range `0..graph.node_count()`. Mapping to
/// domain identifiers (AS numbers) is the responsibility of higher layers.
pub type NodeId = u32;

/// An immutable, undirected, unweighted simple graph in compressed
/// sparse-row form with sorted adjacency lists.
///
/// Construct one with [`GraphBuilder`](crate::GraphBuilder) or
/// [`Graph::from_edges`]. Each undirected edge `{u, v}` is stored twice
/// (once per endpoint) but counted once by [`Graph::edge_count`].
///
/// # Example
///
/// ```
/// use asgraph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0), &[1, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` is the slice of `adjacency` holding `v`'s
    /// sorted neighbour list.
    offsets: Vec<usize>,
    adjacency: Vec<NodeId>,
    edge_count: usize,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of (possibly
    /// unnormalised) edges. Self loops and duplicate edges are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = crate::GraphBuilder::with_nodes(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Creates an empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates a complete graph (clique) on `n` nodes.
    pub fn complete(n: usize) -> Self {
        let mut b = crate::GraphBuilder::with_nodes(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    pub(crate) fn from_csr(offsets: Vec<usize>, adjacency: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), adjacency.len());
        let edge_count = adjacency.len() / 2;
        Graph {
            offsets,
            adjacency,
            edge_count,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    ///
    /// Self queries (`u == v`) return `false`: the graph is simple.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            idx: 0,
        }
    }

    /// Iterates over all node ids, `0..node_count()`.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        0..self.node_count() as NodeId
    }

    /// Degree summary statistics of the whole graph.
    pub fn degrees(&self) -> Degrees {
        let n = self.node_count();
        if n == 0 {
            return Degrees {
                min: 0,
                max: 0,
                mean: 0.0,
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut total = 0usize;
        for v in self.node_ids() {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
            total += d;
        }
        Degrees {
            min,
            max,
            mean: total as f64 / n as f64,
        }
    }

    /// Start index of `v`'s neighbour list inside the flat adjacency
    /// array (used by the weighted view to align per-entry weights).
    #[inline]
    pub(crate) fn adjacency_offset(&self, v: NodeId) -> usize {
        self.offsets[v as usize]
    }

    /// The number of common neighbours of `u` and `v` (sorted-merge
    /// intersection, `O(deg(u) + deg(v))`).
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let (mut a, mut b) = (self.neighbors(u), self.neighbors(v));
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
        }
        let mut count = 0;
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j < b.len() && b[j] == x {
                count += 1;
                j += 1;
            }
        }
        count
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty(0)
    }
}

/// Degree summary statistics returned by [`Graph::degrees`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degrees {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Iterator over the undirected edges of a [`Graph`], produced by
/// [`Graph::edges`]. Yields each edge once as `(u, v)` with `u < v`.
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    u: NodeId,
    idx: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.node_count() as NodeId;
        while self.u < n {
            let nbrs = self.graph.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if self.u < v {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.degrees().mean, 0.0);
    }

    #[test]
    fn complete_graph() {
        let g = Graph::complete(5);
        assert_eq!(g.edge_count(), 10);
        for u in 0..5 {
            assert_eq!(g.degree(u), 4);
            for v in 0..5 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn triangle_edges_once_each() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(6, [(3, 1), (3, 5), (3, 0), (3, 4)]);
        assert_eq!(g.neighbors(3), &[0, 1, 4, 5]);
    }

    #[test]
    fn self_loop_query_is_false() {
        let g = Graph::complete(3);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn common_neighbors() {
        // 0 and 1 share neighbours {2, 3}.
        let g = Graph::from_edges(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3)]);
        assert_eq!(g.common_neighbor_count(0, 1), 2);
        assert_eq!(g.common_neighbor_count(1, 0), 2);
        assert_eq!(g.common_neighbor_count(0, 4), 0);
    }

    #[test]
    fn degree_stats() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let d = g.degrees();
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 3);
        assert!((d.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::complete(2);
        let s = format!("{g:?}");
        assert!(s.contains("Graph"));
    }
}
