//! Edge-weighted graph view.
//!
//! The reproduced paper analyses an *unweighted* topology, but the CPM
//! literature it builds on (CFinder) also supports weighted percolation
//! (Farkas, Ábel, Palla, Vicsek 2007), where a k-clique participates only
//! if its *intensity* — the geometric mean of its link weights — exceeds
//! a threshold. [`WeightedGraph`] carries the weights for that extension
//! (`cpm::weighted`), storing them aligned with the CSR adjacency so
//! lookups share the `O(log d)` edge search.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// An undirected simple graph with a positive weight per edge.
///
/// # Example
///
/// ```
/// use asgraph::weighted::WeightedGraphBuilder;
///
/// let mut b = WeightedGraphBuilder::new();
/// b.add_edge(0, 1, 2.0);
/// b.add_edge(1, 2, 0.5);
/// b.add_edge(0, 1, 3.0); // duplicate: the last weight wins
/// let g = b.build();
/// assert_eq!(g.weight(0, 1), Some(3.0));
/// assert_eq!(g.weight(1, 0), Some(3.0));
/// assert_eq!(g.weight(0, 2), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    graph: Graph,
    /// `weights[i]` is the weight of the adjacency entry `i`, i.e. each
    /// undirected edge stores its weight twice.
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Weight of the edge `{u, v}`, if present.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let nbrs = self.graph.neighbors(u);
        let pos = nbrs.binary_search(&v).ok()?;
        let base = self.offset_of(u);
        Some(self.weights[base + pos])
    }

    /// The neighbours of `v` paired with their edge weights.
    pub fn weighted_neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let base = self.offset_of(v);
        self.graph
            .neighbors(v)
            .iter()
            .enumerate()
            .map(move |(i, &w)| (w, self.weights[base + i]))
    }

    /// Node strength: the sum of incident edge weights.
    pub fn strength(&self, v: NodeId) -> f64 {
        self.weighted_neighbors(v).map(|(_, w)| w).sum()
    }

    /// The *intensity* of the node set `members`: the geometric mean of
    /// the weights of all internal edges. Returns `None` if some pair is
    /// not connected (i.e. the set is not a clique) or the set has fewer
    /// than two nodes.
    pub fn clique_intensity(&self, members: &[NodeId]) -> Option<f64> {
        if members.len() < 2 {
            return None;
        }
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                let w = self.weight(u, v)?;
                log_sum += w.ln();
                count += 1;
            }
        }
        Some((log_sum / count as f64).exp())
    }

    fn offset_of(&self, v: NodeId) -> usize {
        self.graph.adjacency_offset(v)
    }
}

/// Builder for [`WeightedGraph`]: accepts duplicate edges (last weight
/// wins) and drops self loops, mirroring [`crate::GraphBuilder`].
#[derive(Debug, Clone, Default)]
pub struct WeightedGraphBuilder {
    weights: HashMap<(NodeId, NodeId), f64>,
    n: usize,
}

impl WeightedGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder producing a graph with at least `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        WeightedGraphBuilder {
            weights: HashMap::new(),
            n,
        }
    }

    /// Records the undirected edge `{u, v}` with `weight`. Re-adding an
    /// edge replaces its weight; self loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> &mut Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be positive and finite, got {weight}"
        );
        let needed = u.max(v) as usize + 1;
        if needed > self.n {
            self.n = needed;
        }
        if u != v {
            self.weights.insert((u.min(v), u.max(v)), weight);
        }
        self
    }

    /// Finalises the weighted graph.
    pub fn build(&self) -> WeightedGraph {
        let mut b = crate::GraphBuilder::with_nodes(self.n);
        for &(u, v) in self.weights.keys() {
            b.add_edge(u, v);
        }
        let graph = b.build();
        // Align weights with the adjacency layout.
        let mut weights = Vec::with_capacity(graph.edge_count() * 2);
        for v in graph.node_ids() {
            for &w in graph.neighbors(v) {
                let key = (v.min(w), v.max(w));
                weights.push(self.weights[&key]);
            }
        }
        WeightedGraph { graph, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_lookup_both_directions() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 1.5);
        b.add_edge(2, 1, 4.0);
        let g = b.build();
        assert_eq!(g.weight(0, 1), Some(1.5));
        assert_eq!(g.weight(1, 0), Some(1.5));
        assert_eq!(g.weight(1, 2), Some(4.0));
        assert_eq!(g.weight(0, 2), None);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn last_weight_wins() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 9.0);
        let g = b.build();
        assert_eq!(g.weight(0, 1), Some(9.0));
    }

    #[test]
    fn strength_sums_weights() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(0, 3, 3.0);
        let g = b.build();
        assert!((g.strength(0) - 6.0).abs() < 1e-12);
        assert!((g.strength(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clique_intensity_geometric_mean() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 4.0);
        b.add_edge(0, 2, 16.0);
        let g = b.build();
        // geometric mean of {1, 4, 16} = 4
        let i = g.clique_intensity(&[0, 1, 2]).unwrap();
        assert!((i - 4.0).abs() < 1e-9);
        // Non-clique: missing edge.
        let mut b2 = WeightedGraphBuilder::new();
        b2.add_edge(0, 1, 1.0);
        b2.add_edge(1, 2, 1.0);
        let g2 = b2.build();
        assert_eq!(g2.clique_intensity(&[0, 1, 2]), None);
        assert_eq!(g2.clique_intensity(&[0]), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_panics() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(0, 1, 0.0);
    }

    #[test]
    fn weighted_neighbors_aligned() {
        let mut b = WeightedGraphBuilder::new();
        b.add_edge(1, 0, 0.5);
        b.add_edge(1, 2, 1.5);
        b.add_edge(1, 3, 2.5);
        let g = b.build();
        let pairs: Vec<_> = g.weighted_neighbors(1).collect();
        assert_eq!(pairs, vec![(0, 0.5), (2, 1.5), (3, 2.5)]);
    }
}
