//! Compact undirected simple-graph substrate used throughout the
//! `kclique-communities` workspace.
//!
//! The Internet AS-level topology of the reproduced paper (Gregori, Lenzini,
//! Orsini, ICDCS 2011) is an *undirected, unweighted, simple* graph. This
//! crate provides exactly that abstraction, tuned for the access patterns of
//! clique enumeration and clique percolation:
//!
//! - [`GraphBuilder`] ingests an arbitrary edge soup (duplicates, self loops,
//!   both orientations) and normalises it into a simple graph.
//! - [`Graph`] is a compressed-sparse-row structure with **sorted** adjacency
//!   lists, giving `O(log d)` [`Graph::has_edge`] and cache-friendly
//!   neighbourhood scans (the inner loop of Bron–Kerbosch).
//! - [`subgraph`] builds node-induced subgraphs (used for tag-induced
//!   subgraphs in the sense of Palla et al. 2008 and for per-community
//!   metrics).
//! - [`components`] provides connected components and BFS.
//! - [`ordering`] provides degeneracy ordering and core numbers (shared by
//!   Bron–Kerbosch outer loops and the k-core baseline).
//! - [`metrics`] provides link density and Out-Degree Fraction, the two
//!   community quality metrics of the paper's Figure 4.4.
//! - [`io`] reads and writes plain-text edge lists.
//!
//! # Example
//!
//! ```
//! use asgraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! b.add_edge(2, 0); // duplicates are fine
//! let g = b.build();
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod components;
pub mod digraph;
mod error;
mod graph;
pub mod io;
pub mod metrics;
pub mod ordering;
pub mod rewire;
pub mod stats;
pub mod subgraph;
pub mod weighted;

pub use builder::GraphBuilder;
pub use error::ParseGraphError;
pub use graph::{Degrees, EdgeIter, Graph, NodeId};
pub use subgraph::InducedSubgraph;
