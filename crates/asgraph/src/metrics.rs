//! Community quality metrics: link density and Out-Degree Fraction.
//!
//! These are the two metrics of the paper's Figure 4.4. *Link density*
//! (Lancichinetti et al. 2010) is the fraction of realised internal edges
//! over the full-mesh maximum. The *Out-Degree Fraction* (Leskovec et al.,
//! WWW 2010) of a node is the fraction of its edges that leave the
//! community; the paper's prose inverts the ratio by mistake, but its
//! conclusions (small dense parallel communities have *high* ODF, i.e. most
//! of their members' links point outside) match this standard definition,
//! which is what we implement. See DESIGN.md §4.4.

use crate::graph::{Graph, NodeId};

/// Per-community structural metrics over a parent graph.
///
/// Produced by [`community_metrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityMetrics {
    /// Number of nodes in the community.
    pub size: usize,
    /// Edges with both endpoints inside the community.
    pub internal_edges: usize,
    /// Sum over members of edges leaving the community.
    pub external_degree: usize,
    /// Internal edges over `size * (size - 1) / 2`; 1.0 for single nodes.
    pub link_density: f64,
    /// Mean over members of `external / (internal + external)` degree.
    pub average_odf: f64,
}

/// Computes [`CommunityMetrics`] for the node set `members` of `g`.
///
/// Duplicate ids are deduplicated. Isolated members contribute an ODF of 0.
///
/// # Panics
///
/// Panics if any id is out of range.
///
/// # Example
///
/// ```
/// use asgraph::{Graph, metrics::community_metrics};
///
/// // Triangle 0-1-2 with node 2 also linked to outside nodes 3 and 4.
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (2, 4)]);
/// let m = community_metrics(&g, &[0, 1, 2]);
/// assert_eq!(m.internal_edges, 3);
/// assert_eq!(m.link_density, 1.0);
/// // Node 2 has ODF 2/4; nodes 0 and 1 have ODF 0.
/// assert!((m.average_odf - (0.5 / 3.0)).abs() < 1e-12);
/// ```
pub fn community_metrics(g: &Graph, members: &[NodeId]) -> CommunityMetrics {
    let mut inset = vec![false; g.node_count()];
    let mut unique = Vec::with_capacity(members.len());
    for &v in members {
        assert!(
            (v as usize) < g.node_count(),
            "node {v} out of range ({} nodes)",
            g.node_count()
        );
        if !inset[v as usize] {
            inset[v as usize] = true;
            unique.push(v);
        }
    }

    let size = unique.len();
    let mut internal_twice = 0usize;
    let mut external = 0usize;
    let mut odf_sum = 0.0f64;
    for &v in &unique {
        let mut int_deg = 0usize;
        let mut ext_deg = 0usize;
        for &w in g.neighbors(v) {
            if inset[w as usize] {
                int_deg += 1;
            } else {
                ext_deg += 1;
            }
        }
        internal_twice += int_deg;
        external += ext_deg;
        let total = int_deg + ext_deg;
        if total > 0 {
            odf_sum += ext_deg as f64 / total as f64;
        }
    }

    let internal_edges = internal_twice / 2;
    let possible = size.saturating_sub(1) * size / 2;
    let link_density = if possible == 0 {
        1.0
    } else {
        internal_edges as f64 / possible as f64
    };
    let average_odf = if size == 0 {
        0.0
    } else {
        odf_sum / size as f64
    };

    CommunityMetrics {
        size,
        internal_edges,
        external_degree: external,
        link_density,
        average_odf,
    }
}

/// Link density of the whole graph.
pub fn graph_density(g: &Graph) -> f64 {
    let n = g.node_count();
    let possible = n.saturating_sub(1) * n / 2;
    if possible == 0 {
        1.0
    } else {
        g.edge_count() as f64 / possible as f64
    }
}

/// Counts the triangles of `g` using neighbourhood intersections over the
/// degeneracy-oriented graph (each triangle counted once).
pub fn triangle_count(g: &Graph) -> usize {
    let deg = crate::ordering::degeneracy_order(g);
    let mut count = 0usize;
    for u in g.node_ids() {
        let ru = deg.rank[u as usize];
        // Consider only neighbours later in the degeneracy order; the
        // oriented out-degree is bounded by the degeneracy.
        let higher: Vec<NodeId> = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&v| deg.rank[v as usize] > ru)
            .collect();
        for (i, &v) in higher.iter().enumerate() {
            for &w in &higher[i + 1..] {
                if g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// For every edge `(u, v)` of `g`, the number of triangles it participates
/// in, i.e. `|N(u) ∩ N(v)|`. Returned in the same order as
/// [`Graph::edges`]. Used by the k-dense baseline.
pub fn edge_triangle_support(g: &Graph) -> Vec<((NodeId, NodeId), usize)> {
    g.edges()
        .map(|(u, v)| ((u, v), g.common_neighbor_count(u, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_metrics() {
        let g = Graph::complete(5);
        let m = community_metrics(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(m.size, 5);
        assert_eq!(m.internal_edges, 10);
        assert_eq!(m.link_density, 1.0);
        assert_eq!(m.average_odf, 0.0);
    }

    #[test]
    fn singleton_density_is_one() {
        let g = Graph::complete(3);
        let m = community_metrics(&g, &[0]);
        assert_eq!(m.size, 1);
        assert_eq!(m.link_density, 1.0);
        assert_eq!(m.average_odf, 1.0); // both its edges leave
    }

    #[test]
    fn empty_community() {
        let g = Graph::complete(3);
        let m = community_metrics(&g, &[]);
        assert_eq!(m.size, 0);
        assert_eq!(m.average_odf, 0.0);
    }

    #[test]
    fn duplicates_deduplicated() {
        let g = Graph::complete(4);
        let a = community_metrics(&g, &[0, 1, 1, 0]);
        let b = community_metrics(&g, &[0, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn whole_graph_odf_zero() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let all: Vec<_> = g.node_ids().collect();
        let m = community_metrics(&g, &all);
        assert_eq!(m.average_odf, 0.0);
        assert_eq!(m.external_degree, 0);
        assert_eq!(m.internal_edges, g.edge_count());
    }

    #[test]
    fn graph_density_values() {
        assert_eq!(graph_density(&Graph::complete(4)), 1.0);
        assert_eq!(graph_density(&Graph::empty(4)), 0.0);
        assert_eq!(graph_density(&Graph::empty(0)), 1.0);
    }

    #[test]
    fn triangles_in_k4() {
        assert_eq!(triangle_count(&Graph::complete(4)), 4);
    }

    #[test]
    fn triangles_in_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn edge_support_in_k4() {
        let g = Graph::complete(4);
        let support = edge_triangle_support(&g);
        assert_eq!(support.len(), 6);
        assert!(support.iter().all(|&(_, s)| s == 2));
    }
}
