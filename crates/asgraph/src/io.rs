//! Plain-text edge-list serialisation.
//!
//! The format mirrors the public AS-link datasets the paper merges
//! (CAIDA IPv4 Routed /24 AS Links, DIMES, IRL): one undirected edge per
//! line as two whitespace-separated node ids; `#` starts a comment; blank
//! lines are skipped.

use crate::error::ParseGraphError;
use crate::graph::{Graph, NodeId};
use std::io::{self, BufRead, Write};

/// Parses an edge-list document into a [`Graph`].
///
/// Duplicate edges and self loops are normalised away by the builder.
///
/// # Errors
///
/// Returns [`ParseGraphError`] if a non-comment line does not consist of
/// exactly two valid node ids.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), asgraph::ParseGraphError> {
/// let text = "# AS links\n0 1\n1 2\n\n2 0\n";
/// let g = asgraph::io::parse_edge_list(text)?;
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let mut b = crate::GraphBuilder::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (a, b_field) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), None) => (a, b),
            (a, b, c) => {
                let got = [a, b, c].iter().filter(|f| f.is_some()).count();
                return Err(ParseGraphError::field_count(i + 1, got));
            }
        };
        let u: NodeId = a
            .parse()
            .map_err(|_| ParseGraphError::bad_node_id(i + 1, a))?;
        let v: NodeId = b_field
            .parse()
            .map_err(|_| ParseGraphError::bad_node_id(i + 1, b_field))?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads an edge list from any [`BufRead`] source (pass `&mut reader` if
/// you need the reader back).
///
/// # Errors
///
/// Returns an [`io::Error`] for read failures; parse failures are wrapped
/// as [`io::ErrorKind::InvalidData`].
pub fn read_edge_list<R: BufRead>(mut reader: R) -> io::Result<Graph> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_edge_list(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes `g` as an edge-list document (one `u v` pair per line, `u < v`).
///
/// # Errors
///
/// Propagates any error from the underlying writer.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# nodes: {} edges: {}",
        g.node_count(),
        g.edge_count()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Renders `g` as an edge-list string.
pub fn to_edge_list_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("edge list output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)]);
        let text = to_edge_list_string(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = parse_edge_list("# header\n\n0 1\n  # indented comment\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn bad_field_count() {
        let err = parse_edge_list("0 1 2\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("3 fields"));
    }

    #[test]
    fn bad_node_id() {
        let err = parse_edge_list("0 1\nA B\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn single_field_is_error() {
        assert!(parse_edge_list("42\n").is_err());
    }

    #[test]
    fn read_via_bufread() {
        let data = b"0 1\n1 2\n" as &[u8];
        let g = read_edge_list(data).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn read_invalid_data_kind() {
        let data = b"nope\n" as &[u8];
        let err = read_edge_list(data).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
