//! Property-based tests for the graph substrate.

use asgraph::components::{connected_components, is_connected};
use asgraph::metrics::{community_metrics, triangle_count};
use asgraph::ordering::{degeneracy_order, k_core_members};
use asgraph::subgraph::{induced, internal_edge_count};
use asgraph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random edge soup over up to `n` nodes.
fn edge_soup(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    /// Building is idempotent and normalising: rebuilding a built graph's
    /// edge set reproduces the graph.
    #[test]
    fn build_normalises(edges in edge_soup(40, 200)) {
        let mut b = GraphBuilder::new();
        b.add_edges(edges.iter().copied());
        let g = b.build();
        let g2 = Graph::from_edges(g.node_count(), g.edges());
        prop_assert_eq!(g, g2);
    }

    /// Handshake lemma: sum of degrees equals twice the edge count.
    #[test]
    fn handshake(edges in edge_soup(40, 200)) {
        let g = Graph::from_edges(40, edges);
        let degsum: usize = g.node_ids().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.edge_count());
    }

    /// has_edge agrees with the edges() enumeration.
    #[test]
    fn has_edge_consistent(edges in edge_soup(25, 120)) {
        let g = Graph::from_edges(25, edges);
        let set: HashSet<(NodeId, NodeId)> = g.edges().collect();
        for u in g.node_ids() {
            for v in g.node_ids() {
                let expect = u != v && set.contains(&(u.min(v), u.max(v)));
                prop_assert_eq!(g.has_edge(u, v), expect);
            }
        }
    }

    /// Components partition the node set and are edge-closed.
    #[test]
    fn components_partition(edges in edge_soup(30, 100)) {
        let g = Graph::from_edges(30, edges);
        let cc = connected_components(&g);
        let members = cc.members();
        let total: usize = members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.node_count());
        for (u, v) in g.edges() {
            prop_assert!(cc.same_component(u, v));
        }
        if cc.count() == 1 {
            prop_assert!(is_connected(&g));
        }
    }

    /// Core-number invariant: inside the k-core every node has >= k
    /// internal neighbours, and the (k+1)-core is contained in the k-core.
    #[test]
    fn core_numbers_valid(edges in edge_soup(30, 150)) {
        let g = Graph::from_edges(30, edges);
        let d = degeneracy_order(&g);
        for k in 0..=d.degeneracy {
            let members = k_core_members(&g, k);
            let inset: HashSet<_> = members.iter().copied().collect();
            for &v in &members {
                let internal = g.neighbors(v).iter().filter(|w| inset.contains(w)).count();
                prop_assert!(internal >= k as usize);
            }
            if k > 0 {
                let prev: HashSet<_> = k_core_members(&g, k - 1).into_iter().collect();
                prop_assert!(inset.is_subset(&prev));
            }
        }
    }

    /// The degeneracy order really is a degeneracy order: each node has at
    /// most `degeneracy` neighbours later in the order.
    #[test]
    fn degeneracy_order_valid(edges in edge_soup(30, 150)) {
        let g = Graph::from_edges(30, edges);
        let d = degeneracy_order(&g);
        for v in g.node_ids() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&w| d.rank[w as usize] > d.rank[v as usize])
                .count();
            prop_assert!(later <= d.degeneracy as usize);
        }
    }

    /// Induced subgraph edges match the direct internal edge count, and the
    /// subgraph preserves adjacency through the id mapping.
    #[test]
    fn induced_subgraph_faithful(edges in edge_soup(25, 120), pick in prop::collection::vec(0u32..25, 0..15)) {
        let g = Graph::from_edges(25, edges);
        let sub = induced(&g, pick.iter().copied());
        prop_assert_eq!(
            sub.graph.edge_count(),
            internal_edge_count(&g, &sub.original_ids)
        );
        for (lu, lv) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.to_original(lu), sub.to_original(lv)));
        }
    }

    /// Community metrics sanity: density and ODF stay in [0, 1]; metrics of
    /// the full node set have zero ODF.
    #[test]
    fn metrics_in_range(edges in edge_soup(20, 100), pick in prop::collection::vec(0u32..20, 0..12)) {
        let g = Graph::from_edges(20, edges);
        let m = community_metrics(&g, &pick);
        prop_assert!((0.0..=1.0).contains(&m.link_density));
        prop_assert!((0.0..=1.0).contains(&m.average_odf));
        let all: Vec<_> = g.node_ids().collect();
        let whole = community_metrics(&g, &all);
        prop_assert_eq!(whole.average_odf, 0.0);
        prop_assert_eq!(whole.internal_edges, g.edge_count());
    }

    /// Triangle count is invariant under the formula sum over edges of
    /// common neighbours / 3.
    #[test]
    fn triangle_count_consistent(edges in edge_soup(20, 100)) {
        let g = Graph::from_edges(20, edges);
        let by_edges: usize = g
            .edges()
            .map(|(u, v)| g.common_neighbor_count(u, v))
            .sum();
        prop_assert_eq!(by_edges % 3, 0);
        prop_assert_eq!(triangle_count(&g), by_edges / 3);
    }

    /// Edge-list round trip preserves the graph exactly.
    #[test]
    fn io_round_trip(edges in edge_soup(30, 120)) {
        let g = Graph::from_edges(30, edges);
        let text = asgraph::io::to_edge_list_string(&g);
        let g2 = asgraph::io::parse_edge_list(&text).unwrap();
        // Node count may shrink if trailing nodes are isolated; compare
        // edges and degrees of surviving prefix.
        let shared = g2.node_count();
        prop_assert!(shared <= g.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        for v in 0..shared as NodeId {
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }
}
