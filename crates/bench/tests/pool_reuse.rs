//! Pool reuse, measured: warm calls must not re-pay cold-start costs.
//!
//! Requires the `memprof` counting allocator:
//!
//! ```text
//! cargo test -p bench --features memprof --test pool_reuse --release
//! ```
//!
//! The persistent executor exists to amortise two per-call costs of the
//! old `crossbeam::scope` pipelines: OS thread spawning and scratch
//! (re)allocation. Both are observable from outside — thread creation
//! through `exec::Pool::spawned_threads`, allocation churn through the
//! counting allocator's cumulative byte counter — so this test pins the
//! amortisation down as numbers rather than trusting the design.

#![cfg(feature = "memprof")]

use exec::Pool;

#[global_allocator]
static ALLOC: bench::memprof::CountingAlloc = bench::memprof::CountingAlloc;

#[test]
fn warm_calls_reuse_threads_and_scratch() {
    let g = bench::random_graph(150, 0.12, 42);
    let reference = cpm::percolate(&g);

    // Cold call: spawns pool threads, builds per-worker scratch arenas.
    let (cold_result, cold_bytes) =
        bench::memprof::measure_total(|| cpm::parallel::percolate_parallel(&g, 4));
    assert_eq!(reference.levels, cold_result.levels);
    let spawned = Pool::global().spawned_threads();
    assert!(spawned >= 3, "expected pool threads after a 4-worker call");

    // Warm calls: same work, but threads and arenas already exist.
    let mut warm_bytes = Vec::new();
    for round in 0..5 {
        let (warm_result, bytes) =
            bench::memprof::measure_total(|| cpm::parallel::percolate_parallel(&g, 4));
        assert_eq!(reference.levels, warm_result.levels, "round {round}");
        assert_eq!(
            Pool::global().spawned_threads(),
            spawned,
            "round {round}: warm call spawned threads"
        );
        warm_bytes.push(bytes);
    }

    // Every warm call allocates strictly less than the cold call: the
    // one-time costs (thread bookkeeping, arena construction) are gone.
    for (round, &bytes) in warm_bytes.iter().enumerate() {
        assert!(
            bytes < cold_bytes,
            "round {round}: warm call allocated {bytes} bytes, cold call {cold_bytes}"
        );
    }

    // And warm calls are allocation-stable against each other: scratch
    // arenas persist instead of being re-grown, so identical inputs
    // allocate (nearly) identical volumes. 10% slack covers ancillary
    // noise (e.g. lazily grown Vec capacities crossing a threshold).
    let min = *warm_bytes.iter().min().unwrap() as f64;
    let max = *warm_bytes.iter().max().unwrap() as f64;
    assert!(
        max <= min * 1.10,
        "warm allocation volumes vary too much: min {min}, max {max}"
    );
}
