//! A counting global allocator for peak-heap measurements.
//!
//! Install [`CountingAlloc`] as the `#[global_allocator]` of a binary,
//! then bracket the region of interest with [`reset_peak`] and
//! [`peak_bytes`]. Counters are process-global atomics updated with
//! relaxed ordering — accurate for single-threaded measurement regions,
//! within a few allocations of exact under concurrency.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL: AtomicUsize = AtomicUsize::new(0);

/// [`System`] with live/peak byte accounting on every (de)allocation.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
    TOTAL.fetch_add(size, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System` unchanged; the layout
// contract is exactly `System`'s. Counter updates have no safety impact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`] (or process start).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts the high-water mark from the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Cumulative bytes ever allocated (never decremented) — the metric
/// that exposes allocation churn invisible to live/peak accounting,
/// e.g. scratch buffers freed and re-grown on every call.
pub fn total_allocated_bytes() -> usize {
    TOTAL.load(Ordering::Relaxed)
}

/// Measures `f`'s peak heap growth: runs it and returns
/// `(result, peak_bytes_above_entry_live_size)`.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = current_bytes();
    reset_peak();
    let out = f();
    (out, peak_bytes().saturating_sub(before))
}

/// Measures `f`'s cumulative allocation volume: runs it and returns
/// `(result, total_bytes_allocated_during_f)`.
pub fn measure_total<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = total_allocated_bytes();
    let out = f();
    (out, total_allocated_bytes() - before)
}
