//! Shared fixtures for the Criterion benchmarks.
//!
//! With the `memprof` feature the crate additionally exposes
//! [`memprof`], a counting global allocator used by the `stream-mem`
//! binary to compare peak heap usage of batch vs streaming percolation.

// memprof implements GlobalAlloc, which is inherently unsafe; the rest
// of the crate stays forbidden.
#![cfg_attr(not(feature = "memprof"), forbid(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "memprof")]
pub mod memprof;

use asgraph::{Graph, GraphBuilder};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A seeded Erdős–Rényi graph.
pub fn random_graph(n: u32, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_nodes(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// The tiny-preset synthetic Internet (the standard bench workload).
pub fn tiny_internet(seed: u64) -> topology::AsTopology {
    topology::generate(&topology::ModelConfig::tiny(seed)).expect("preset is valid")
}

/// The small-preset synthetic Internet (~2,000 ASes).
pub fn small_internet(seed: u64) -> topology::AsTopology {
    topology::generate(&topology::ModelConfig::small(seed)).expect("preset is valid")
}

/// The medium-preset synthetic Internet (~10,000 ASes) — the
/// parallel-scaling substrate: big enough that one percolation run
/// dwarfs pool fan-out overhead.
pub fn medium_internet(seed: u64) -> topology::AsTopology {
    topology::generate(&topology::ModelConfig::medium(seed)).expect("preset is valid")
}
