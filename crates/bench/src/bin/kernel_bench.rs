//! Machine-readable merge-vs-bitset kernel benchmark.
//!
//! ```text
//! cargo run --release -p bench --features memprof --bin kernel-bench -- \
//!     [--substrate tiny|small|sparse|dense|all] [--threads <n>|auto] \
//!     [--iters <n>] [--seed <u64>] [--out BENCH_kernel.json]
//! ```
//!
//! For every (substrate, operation, kernel) combination this times
//! `--iters` runs, reports the median wall time, and measures the peak
//! heap growth of one run through the `memprof` counting allocator. The
//! JSON written to `--out` (stdout gets a human table) is the record
//! committed as `BENCH_kernel.json` and checked by the CI smoke job.
//!
//! Operations: `enumerate` (sequential maximal cliques), `enumerate_par`
//! (work-stealing, `--threads` workers), `overlap` (clique-overlap
//! counting), `percolate` (full sequential CPM), `percolate_par`,
//! `percolate_fused` / `percolate_fused_par` (the sink-driven pipeline —
//! cliques stream straight into percolation, no clique list; the `_par`
//! row runs both the enumeration *and* the finish-time phases on the
//! pool), and
//! `sweep` (the union/grouping phase alone, from prebuilt overlap
//! strata — so end-to-end time decomposes into enumerate + overlap +
//! sweep; the row includes one clone of the inputs per run). Every row
//! carries a `mode` column: the kernel matrix runs the `exact` engine,
//! plus one sequential and one parallel `almost`-mode row per fused and
//! staged `percolate` op per substrate (the almost engine does no
//! overlap counting, so it is kernel-independent). The `peak_bytes`
//! column makes the fused pipeline's point directly: its rows peak well
//! below the staged ones, which hold the full clique list.

use cliques::Kernel;
use cpm::{build_vertex_index, overlap_edges_with};
use std::time::Instant;

#[global_allocator]
static ALLOC: bench::memprof::CountingAlloc = bench::memprof::CountingAlloc;

struct Record {
    substrate: String,
    op: &'static str,
    mode: &'static str,
    kernel: Kernel,
    threads: exec::Threads,
    median_ns: u128,
    peak_bytes: usize,
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `iters` runs of `f` and measures one run's peak heap growth.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> (u128, usize) {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_nanos());
        drop(out);
    }
    let (_, peak) = bench::memprof::measure_peak(&mut f);
    (median_ns(samples), peak)
}

fn bench_substrate(
    name: &str,
    g: &asgraph::Graph,
    threads: exec::Threads,
    iters: usize,
    records: &mut Vec<Record>,
) {
    let mut cliques = cliques::max_cliques(g);
    cliques.canonicalize();
    let index = build_vertex_index(&cliques, g.node_count());

    for kernel in [Kernel::Merge, Kernel::Bitset, Kernel::Auto] {
        let mut push = |op, threads, (median_ns, peak_bytes)| {
            records.push(Record {
                substrate: name.to_owned(),
                op,
                mode: "exact",
                kernel,
                threads,
                median_ns,
                peak_bytes,
            });
        };
        push(
            "enumerate",
            exec::Threads::Fixed(1),
            measure(iters, || cliques::max_cliques_with(g, kernel)),
        );
        push(
            "enumerate_par",
            threads,
            measure(iters, || {
                cliques::parallel::max_cliques_parallel_with(g, threads, kernel)
            }),
        );
        push(
            "overlap",
            exec::Threads::Fixed(1),
            measure(iters, || overlap_edges_with(&cliques, &index, kernel)),
        );
        push(
            "percolate",
            exec::Threads::Fixed(1),
            measure(iters, || cpm::percolate_with_kernel(g, kernel)),
        );
        push(
            "percolate_par",
            threads,
            measure(iters, || {
                cpm::parallel::percolate_parallel_with_kernel(g, threads, kernel)
            }),
        );
        push(
            "percolate_fused",
            exec::Threads::Fixed(1),
            measure(iters, || {
                cpm::percolate_fused_with_kernel(g, kernel, cpm::Mode::Exact)
            }),
        );
        push(
            "percolate_fused_par",
            threads,
            measure(iters, || {
                cpm::percolate_fused_cancellable(
                    g,
                    threads,
                    kernel,
                    &exec::CancelToken::new(),
                    cpm::Mode::Exact,
                )
            }),
        );
    }

    // The previously-unattributed phase: the descending-k union/grouping
    // sweep alone, from prebuilt strata (min-overlap 2, as the pipeline
    // builds them — k = 2 chains off the posting lists inside the
    // sweep). One row (the sweep is kernel-independent); timing includes
    // cloning the inputs.
    let strata = cpm::overlap_strata_min(&cliques, &index, Kernel::Auto, 2);
    let (median_ns, peak_bytes) = measure(iters, || {
        cpm::percolate_from_strata(cliques.clone(), strata.clone(), &index)
    });
    records.push(Record {
        substrate: name.to_owned(),
        op: "sweep",
        mode: "exact",
        kernel: Kernel::Auto,
        threads: exec::Threads::Fixed(1),
        median_ns,
        peak_bytes,
    });

    // The almost engine is kernel-independent (no overlap counting at
    // all); one sequential and one parallel end-to-end row suffice for
    // the exact-vs-almost comparison per substrate.
    let (median_ns, peak_bytes) = measure(iters, || cpm::percolate_mode(g, cpm::Mode::Almost));
    records.push(Record {
        substrate: name.to_owned(),
        op: "percolate",
        mode: "almost",
        kernel: Kernel::Auto,
        threads: exec::Threads::Fixed(1),
        median_ns,
        peak_bytes,
    });
    let (median_ns, peak_bytes) = measure(iters, || {
        cpm::parallel::percolate_parallel_mode(g, threads, cpm::Mode::Almost)
    });
    records.push(Record {
        substrate: name.to_owned(),
        op: "percolate_par",
        mode: "almost",
        kernel: Kernel::Auto,
        threads,
        median_ns,
        peak_bytes,
    });
    let (median_ns, peak_bytes) = measure(iters, || cpm::percolate_fused(g, cpm::Mode::Almost));
    records.push(Record {
        substrate: name.to_owned(),
        op: "percolate_fused",
        mode: "almost",
        kernel: Kernel::Auto,
        threads: exec::Threads::Fixed(1),
        median_ns,
        peak_bytes,
    });
    let (median_ns, peak_bytes) = measure(iters, || {
        cpm::percolate_fused_parallel(g, threads, cpm::Mode::Almost)
    });
    records.push(Record {
        substrate: name.to_owned(),
        op: "percolate_fused_par",
        mode: "almost",
        kernel: Kernel::Auto,
        threads,
        median_ns,
        peak_bytes,
    });
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is an identifier-like token; keep the writer
    // honest anyway.
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c)),
        "unexpected character in JSON token {s:?}"
    );
    s
}

fn to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        // A fixed count stays a JSON number; `auto` becomes a string.
        let threads = match r.threads {
            exec::Threads::Auto => "\"auto\"".to_owned(),
            exec::Threads::Fixed(n) => n.to_string(),
        };
        out.push_str(&format!(
            "  {{\"substrate\": \"{}\", \"op\": \"{}\", \"mode\": \"{}\", \"kernel\": \"{}\", \"threads\": {threads}, \"median_ns\": {}, \"peak_bytes\": {}}}{}\n",
            json_escape_free(&r.substrate),
            json_escape_free(r.op),
            json_escape_free(r.mode),
            json_escape_free(&r.kernel.to_string()),
            r.median_ns,
            r.peak_bytes,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let substrate = get("--substrate").unwrap_or_else(|| "all".to_owned());
    let threads: exec::Threads =
        get("--threads").map_or(exec::Threads::Auto, |v| v.parse().expect("bad --threads"));
    let iters: usize = get("--iters").map_or(9, |v| v.parse().expect("bad --iters"));
    let seed: u64 = get("--seed").map_or(7, |v| v.parse().expect("bad --seed"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_kernel.json".to_owned());

    let mut substrates: Vec<(&str, asgraph::Graph)> = Vec::new();
    let want = |name: &str| substrate == "all" || substrate == name;
    if want("sparse") {
        substrates.push(("sparse300", bench::random_graph(300, 0.05, seed)));
    }
    if want("dense") {
        substrates.push(("dense60", bench::random_graph(60, 0.5, seed)));
    }
    if want("tiny") {
        substrates.push(("tiny-internet", bench::tiny_internet(seed).graph));
    }
    if want("small") {
        substrates.push(("small-internet", bench::small_internet(seed).graph));
    }
    if substrates.is_empty() {
        eprintln!(
            "unknown --substrate {substrate:?}; expected tiny | small | sparse | dense | all"
        );
        std::process::exit(2);
    }

    let mut records = Vec::new();
    for (name, g) in &substrates {
        eprintln!(
            "benching {name}: {} nodes, {} edges ({iters} iters, {threads} threads)",
            g.node_count(),
            g.edge_count()
        );
        bench_substrate(name, g, threads, iters, &mut records);
    }

    println!(
        "{:<16} {:<14} {:<7} {:<7} {:>3} {:>14} {:>12}",
        "substrate", "op", "mode", "kernel", "thr", "median_ns", "peak_bytes"
    );
    for r in &records {
        println!(
            "{:<16} {:<14} {:<7} {:<7} {:>3} {:>14} {:>12}",
            r.substrate, r.op, r.mode, r.kernel, r.threads, r.median_ns, r.peak_bytes
        );
    }
    // Speedup summary: bitset vs merge per (substrate, op), exact rows.
    for (name, _) in &substrates {
        for op in [
            "enumerate",
            "enumerate_par",
            "overlap",
            "percolate",
            "percolate_par",
            "percolate_fused",
            "percolate_fused_par",
        ] {
            let find = |k: Kernel| {
                records
                    .iter()
                    .find(|r| {
                        r.substrate == *name && r.op == op && r.mode == "exact" && r.kernel == k
                    })
                    .map(|r| r.median_ns)
            };
            if let (Some(m), Some(b)) = (find(Kernel::Merge), find(Kernel::Bitset)) {
                println!(
                    "speedup {name}/{op}: bitset is {:.2}x vs merge",
                    m as f64 / b.max(1) as f64
                );
            }
            // Auto vs merge is the user-visible change: merge was the
            // only (implicit) kernel before `--kernel` existed.
            if let (Some(m), Some(a)) = (find(Kernel::Merge), find(Kernel::Auto)) {
                println!(
                    "speedup {name}/{op}: auto is {:.2}x vs merge",
                    m as f64 / a.max(1) as f64
                );
            }
        }
        // Mode summary: the almost engine vs the exact auto-kernel row.
        for op in [
            "percolate",
            "percolate_par",
            "percolate_fused",
            "percolate_fused_par",
        ] {
            let find = |mode: &str| {
                records
                    .iter()
                    .find(|r| {
                        r.substrate == *name
                            && r.op == op
                            && r.mode == mode
                            && r.kernel == Kernel::Auto
                    })
                    .map(|r| r.median_ns)
            };
            if let (Some(e), Some(a)) = (find("exact"), find("almost")) {
                println!(
                    "speedup {name}/{op}: almost mode is {:.2}x vs exact",
                    e as f64 / a.max(1) as f64
                );
            }
        }
        // Pipeline summary: the fused pipeline against its staged twin,
        // wall time and peak heap, per mode (auto-kernel rows).
        for (staged_op, fused_op) in [
            ("percolate", "percolate_fused"),
            ("percolate_par", "percolate_fused_par"),
        ] {
            for mode in ["exact", "almost"] {
                let find = |op: &str| {
                    records.iter().find(|r| {
                        r.substrate == *name
                            && r.op == op
                            && r.mode == mode
                            && r.kernel == Kernel::Auto
                    })
                };
                if let (Some(s), Some(f)) = (find(staged_op), find(fused_op)) {
                    println!(
                        "pipeline {name}/{staged_op} ({mode}): fused is {:.2}x vs staged, \
                         peak heap {:.2}x",
                        s.median_ns as f64 / f.median_ns.max(1) as f64,
                        f.peak_bytes as f64 / s.peak_bytes.max(1) as f64
                    );
                }
            }
        }
    }

    std::fs::write(&out_path, to_json(&records)).expect("cannot write bench JSON");
    eprintln!("wrote {out_path}");
}
