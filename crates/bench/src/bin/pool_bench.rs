//! Thread-scaling record for the persistent executor.
//!
//! ```text
//! cargo run --release -p bench --bin pool-bench -- \
//!     [--substrate tiny|medium|sparse|dense|all] [--iters <n>] \
//!     [--seed <u64>] [--out BENCH_pool.json] [--check]
//! ```
//!
//! For each substrate this times the pool-backed phases — `enumerate`
//! (work-stealing Bron–Kerbosch), `overlap` (stratified overlap
//! counting), `percolate` (the staged collect-then-percolate pipeline),
//! and `percolate-fused` (the sink-driven pipeline that percolates each
//! clique as it is enumerated, never materialising the clique set) — at
//! fixed worker counts 1/2/4/8 plus one `auto` row, all through the
//! same persistent `exec::Pool`. The `percolate` ops are timed in both
//! percolation modes (`exact` and `almost`). The almost engine
//! additionally gets sequential per-phase rows (`key-build`, `union`,
//! `snapshot`), and the fused pipeline gets its own phase rows
//! (`fused-consume`, `fused-pairs`, `fused-sweep`, `fused-extract`) at
//! 1 and 4 workers — every fused phase chunks over the pool — so both
//! end-to-end numbers decompose along both axes. The JSON written to
//! `--out` is the record committed as `BENCH_pool.json`; with
//! `--features memprof` every row also carries the peak heap growth of
//! one run in a `peak_bytes` column (0 when the feature is off) — for
//! the fused phase rows, attributed per phase through the probed
//! pipeline's observer hook.
//!
//! `--check` turns the run into a CI gate with five clauses. Scaling:
//! on every substrate, the 4-worker and `auto` rows of each phase must
//! not be slower than 1.2× the 1-worker row. The bound is deliberately
//! loose — on a single-core runner extra workers are pure overhead and
//! the gate then measures exactly that overhead, which the persistent
//! pool is supposed to keep negligible; on a multi-core runner real
//! speedups clear it easily. Mode: on the medium Internet substrate the
//! almost engine must run the full percolation at least 5× faster than
//! the exact one, compared on the sequential rows' per-iteration minima
//! (noise on a shared runner only inflates samples of a deterministic
//! run; the median would make the gate flaky). The sequential rows are
//! the honest comparison — the parallel exact path amortises its
//! overlap hot loop across workers, which would understate the engine
//! change itself. Pipeline: on the same substrate the fused pipeline
//! must beat the staged one by at least 1.25× on the sequential
//! almost-mode minima. Memory (only when the records carry peaks): the
//! fused pipeline's peak heap must stay below the staged one's, which
//! pays for the full clique list. Fused scaling (only when the machine
//! has ≥ 4 hardware threads): the 4-worker fused run must beat the
//! 1-worker one by at least 1.3× on the medium Internet minima, both
//! modes — the gate that keeps the parallel finish honest.

use cliques::Kernel;
use exec::Threads;
use std::time::Instant;

#[cfg(feature = "memprof")]
#[global_allocator]
static ALLOC: bench::memprof::CountingAlloc = bench::memprof::CountingAlloc;

/// Fixed worker counts of the scaling curve; one `auto` row is added.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Record {
    substrate: String,
    op: &'static str,
    mode: &'static str,
    threads: Threads,
    median_ns: u128,
    min_ns: u128,
    /// Peak heap growth of one run (memprof feature only; 0 otherwise).
    peak_bytes: usize,
}

/// (median, minimum) of the samples. The median is the headline number;
/// the minimum is the noise-robust estimator for a deterministic
/// CPU-bound run (scheduling noise is strictly additive), which the
/// mode gate compares.
fn stats_ns(mut samples: Vec<u128>) -> (u128, u128) {
    samples.sort_unstable();
    (samples[samples.len() / 2], samples[0])
}

/// Peak heap growth of one run of `f`. Without the `memprof` counting
/// allocator there is nothing to count, so the run is skipped entirely.
#[cfg(feature = "memprof")]
fn peak_of<T>(mut f: impl FnMut() -> T) -> usize {
    bench::memprof::measure_peak(&mut f).1
}

#[cfg(not(feature = "memprof"))]
fn peak_of<T>(_f: impl FnMut() -> T) -> usize {
    0
}

fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> (u128, u128, usize) {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_nanos());
        drop(out);
    }
    let (median_ns, min_ns) = stats_ns(samples);
    (median_ns, min_ns, peak_of(f))
}

fn bench_substrate(name: &str, g: &asgraph::Graph, iters: usize, records: &mut Vec<Record>) {
    let mut cliques = cliques::max_cliques(g);
    cliques.canonicalize();
    let index = cpm::build_vertex_index(&cliques, g.node_count());

    let mut rows: Vec<Threads> = THREAD_COUNTS.iter().map(|&t| Threads::Fixed(t)).collect();
    rows.push(Threads::Auto);
    for threads in rows {
        let mut push = |op, mode, (median_ns, min_ns, peak_bytes)| {
            records.push(Record {
                substrate: name.to_owned(),
                op,
                mode,
                threads,
                median_ns,
                min_ns,
                peak_bytes,
            });
        };
        push(
            "enumerate",
            "exact",
            measure(iters, || {
                cliques::parallel::max_cliques_parallel(g, threads)
            }),
        );
        push(
            "overlap",
            "exact",
            measure(iters, || {
                cpm::parallel::overlap_strata_parallel_min(
                    &cliques,
                    &index,
                    threads,
                    Kernel::Auto,
                    2,
                )
            }),
        );
        push(
            "percolate",
            "exact",
            measure(iters, || cpm::parallel::percolate_parallel(g, threads)),
        );
        push(
            "percolate",
            "almost",
            measure(iters, || {
                cpm::parallel::percolate_parallel_mode(g, threads, cpm::Mode::Almost)
            }),
        );
        push(
            "percolate-fused",
            "exact",
            measure(iters, || {
                cpm::percolate_fused_parallel(g, threads, cpm::Mode::Exact)
            }),
        );
        push(
            "percolate-fused",
            "almost",
            measure(iters, || {
                cpm::percolate_fused_parallel(g, threads, cpm::Mode::Almost)
            }),
        );
    }

    // The almost engine's sequential phase breakdown: where the
    // (k−1)-clique-key pipeline spends its time once the cliques exist
    // (end-to-end = enumerate + key-build + union + snapshot).
    let mut key_build = Vec::with_capacity(iters);
    let mut union = Vec::with_capacity(iters);
    let mut snapshot = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (_, phases) = cpm::percolate_almost_phases(cliques.clone());
        key_build.push(phases.key_build.as_nanos());
        union.push(phases.union.as_nanos());
        snapshot.push(phases.snapshot.as_nanos());
    }
    for (op, samples) in [
        ("key-build", key_build),
        ("union", union),
        ("snapshot", snapshot),
    ] {
        let (median_ns, min_ns) = stats_ns(samples);
        records.push(Record {
            substrate: name.to_owned(),
            op,
            mode: "almost",
            threads: Threads::Fixed(1),
            median_ns,
            min_ns,
            peak_bytes: 0,
        });
    }

    // The fused pipeline's phase breakdown at 1 and 4 workers:
    // `consume` is the enumerate-while-percolating front (Bron–Kerbosch
    // driving the consumer), `pairs`/`sweep`/`extract` the finish work
    // — all four now chunk over the pool, so each phase gets its own
    // scaling rows. One probed run per row attributes peak heap growth
    // to each phase (memprof feature; zeros otherwise).
    for mode in [cpm::Mode::Exact, cpm::Mode::Almost] {
        for workers in [1usize, 4] {
            let threads = Threads::Fixed(workers);
            let mut consume = Vec::with_capacity(iters);
            let mut pairs = Vec::with_capacity(iters);
            let mut sweep = Vec::with_capacity(iters);
            let mut extract = Vec::with_capacity(iters);
            for _ in 0..iters {
                let (_, phases) = cpm::percolate_fused_phases_parallel(g, threads, mode);
                consume.push(phases.consume.as_nanos());
                pairs.push(phases.pairs.as_nanos());
                sweep.push(phases.sweep.as_nanos());
                extract.push(phases.extract.as_nanos());
            }
            let peaks = fused_phase_peaks(g, threads, mode);
            for ((op, samples), peak_bytes) in [
                ("fused-consume", consume),
                ("fused-pairs", pairs),
                ("fused-sweep", sweep),
                ("fused-extract", extract),
            ]
            .into_iter()
            .zip(peaks)
            {
                let (median_ns, min_ns) = stats_ns(samples);
                records.push(Record {
                    substrate: name.to_owned(),
                    op,
                    mode: match mode {
                        cpm::Mode::Exact => "exact",
                        cpm::Mode::Almost => "almost",
                    },
                    threads,
                    median_ns,
                    min_ns,
                    peak_bytes,
                });
            }
        }
    }
}

/// Peak heap growth of each fused phase — `[consume, pairs, sweep,
/// extract]` — over one probed run. The observer fires as each phase
/// *starts*: the high-water mark accumulated since the previous
/// transition, less the live size at that transition, is the finishing
/// phase's peak growth; the phase running when the pipeline returns is
/// closed out after the call.
#[cfg(feature = "memprof")]
fn fused_phase_peaks(g: &asgraph::Graph, threads: Threads, mode: cpm::Mode) -> [usize; 4] {
    use bench::memprof::{current_bytes, peak_bytes, reset_peak};
    let mut peaks = [0usize; 4];
    let mut started = 0usize;
    let mut entry = 0usize;
    let _ = cpm::percolate_fused_phases_probed(g, threads, mode, &mut |_name| {
        if started > 0 {
            peaks[started - 1] = peak_bytes().saturating_sub(entry);
        }
        entry = current_bytes();
        reset_peak();
        started += 1;
    });
    if started > 0 {
        peaks[started - 1] = peak_bytes().saturating_sub(entry);
    }
    peaks
}

#[cfg(not(feature = "memprof"))]
fn fused_phase_peaks(_g: &asgraph::Graph, _threads: Threads, _mode: cpm::Mode) -> [usize; 4] {
    [0; 4]
}

fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c)),
        "unexpected character in JSON token {s:?}"
    );
    s
}

fn to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let threads = match r.threads {
            Threads::Auto => "\"auto\"".to_owned(),
            Threads::Fixed(n) => n.to_string(),
        };
        out.push_str(&format!(
            "  {{\"substrate\": \"{}\", \"op\": \"{}\", \"mode\": \"{}\", \"threads\": {threads}, \"median_ns\": {}, \"min_ns\": {}, \"peak_bytes\": {}}}{}\n",
            json_escape_free(&r.substrate),
            json_escape_free(r.op),
            json_escape_free(r.mode),
            r.median_ns,
            r.min_ns,
            r.peak_bytes,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// The `--check` gate. Scaling clause: 4-worker and auto rows within
/// `BOUND`× of the 1-worker row (medians) for every (substrate, op,
/// mode). Mode clause: on the medium Internet substrate the almost
/// engine's sequential end-to-end percolation at least `MODE_BOUND`×
/// faster than the exact one (per-iteration minima). Pipeline clause:
/// on the same substrate the fused pipeline at least `FUSED_BOUND`×
/// faster than the staged one (almost mode, sequential minima). Memory
/// clause: when the rows carry memprof peaks, the fused pipeline's
/// peak heap below the staged one's. Returns violation messages.
fn check(records: &[Record]) -> Vec<String> {
    const BOUND: f64 = 1.2;
    const MODE_BOUND: f64 = 5.0;
    const FUSED_BOUND: f64 = 1.25;
    const FUSED_SCALE_BOUND: f64 = 1.3;
    let mut violations = Vec::new();
    let find = |sub: &str, op: &str, mode: &str, threads: Threads| {
        records
            .iter()
            .find(|r| r.substrate == sub && r.op == op && r.mode == mode && r.threads == threads)
    };
    let mut seen: Vec<&str> = Vec::new();
    for r in records {
        if !seen.contains(&r.substrate.as_str()) {
            seen.push(&r.substrate);
        }
    }
    for sub in seen {
        for (op, mode) in [
            ("enumerate", "exact"),
            ("overlap", "exact"),
            ("percolate", "exact"),
            ("percolate", "almost"),
            ("percolate-fused", "exact"),
            ("percolate-fused", "almost"),
        ] {
            let Some(base) = find(sub, op, mode, Threads::Fixed(1)).map(|r| r.median_ns) else {
                continue;
            };
            for threads in [Threads::Fixed(4), Threads::Auto] {
                if let Some(t) = find(sub, op, mode, threads).map(|r| r.median_ns) {
                    let ratio = t as f64 / base.max(1) as f64;
                    if ratio > BOUND {
                        violations.push(format!(
                            "{sub}/{op} ({mode}) @ {threads} workers is {ratio:.2}x the \
                             1-worker time (bound {BOUND}x)"
                        ));
                    }
                }
            }
        }
        // The mode clause compares the per-row *minima*: both engines
        // are deterministic and CPU-bound, so scheduling noise on a
        // shared runner only ever inflates a sample, and the minimum is
        // the stable estimate of the true cost ratio.
        if let (Some(exact), Some(almost)) = (
            find(sub, "percolate", "exact", Threads::Fixed(1)).map(|r| r.min_ns),
            find(sub, "percolate", "almost", Threads::Fixed(1)).map(|r| r.min_ns),
        ) {
            let ratio = exact as f64 / almost.max(1) as f64;
            if sub == "medium-internet" && ratio < MODE_BOUND {
                violations.push(format!(
                    "{sub}/percolate: almost mode is only {ratio:.2}x faster than exact \
                     (bound {MODE_BOUND}x)"
                ));
            }
        }
        // The pipeline clause: the fused pipeline earns its keep on the
        // real workload — the staged almost pipeline's sequential
        // minimum must be at least FUSED_BOUND× the fused one's.
        if let (Some(staged), Some(fused)) = (
            find(sub, "percolate", "almost", Threads::Fixed(1)),
            find(sub, "percolate-fused", "almost", Threads::Fixed(1)),
        ) {
            let ratio = staged.min_ns as f64 / fused.min_ns.max(1) as f64;
            if sub == "medium-internet" && ratio < FUSED_BOUND {
                violations.push(format!(
                    "{sub}/percolate: fused pipeline is only {ratio:.2}x faster than staged \
                     (bound {FUSED_BOUND}x)"
                ));
            }
            // The memory clause: fused never materialises the clique
            // set, so its peak heap must stay below the staged
            // pipeline's, which holds the full clique list. Gated on
            // the rows actually carrying peaks (memprof feature).
            if sub == "medium-internet"
                && staged.peak_bytes > 0
                && fused.peak_bytes >= staged.peak_bytes
            {
                violations.push(format!(
                    "{sub}/percolate: fused peak heap {} B is not below staged {} B",
                    fused.peak_bytes, staged.peak_bytes
                ));
            }
        }
        // The fused scaling clause: the finish phases chunk over the
        // pool, so on hardware with real parallelism the 4-worker fused
        // run must beat the 1-worker one outright. Gated on the machine
        // actually having 4 threads — on a single-core runner extra
        // workers cannot speed anything up and the generic BOUND clause
        // above already polices their overhead.
        if sub == "medium-internet" && exec::available_parallelism() >= 4 {
            for mode in ["exact", "almost"] {
                if let (Some(one), Some(four)) = (
                    find(sub, "percolate-fused", mode, Threads::Fixed(1)).map(|r| r.min_ns),
                    find(sub, "percolate-fused", mode, Threads::Fixed(4)).map(|r| r.min_ns),
                ) {
                    let speedup = one as f64 / four.max(1) as f64;
                    if speedup < FUSED_SCALE_BOUND {
                        violations.push(format!(
                            "{sub}/percolate-fused ({mode}): 4 workers run only {speedup:.2}x \
                             vs 1 (bound {FUSED_SCALE_BOUND}x)"
                        ));
                    }
                }
            }
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let substrate = get("--substrate").unwrap_or_else(|| "all".to_owned());
    let iters: usize = get("--iters").map_or(7, |v| v.parse().expect("bad --iters"));
    let seed: u64 = get("--seed").map_or(7, |v| v.parse().expect("bad --seed"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_pool.json".to_owned());

    let mut substrates: Vec<(&str, asgraph::Graph)> = Vec::new();
    let want = |name: &str| substrate == "all" || substrate == name;
    if want("sparse") {
        substrates.push(("sparse300", bench::random_graph(300, 0.05, seed)));
    }
    if want("dense") {
        substrates.push(("dense60", bench::random_graph(60, 0.5, seed)));
    }
    if want("tiny") {
        substrates.push(("tiny-internet", bench::tiny_internet(seed).graph));
    }
    if want("medium") {
        substrates.push(("medium-internet", bench::medium_internet(seed).graph));
    }
    if substrates.is_empty() {
        eprintln!(
            "unknown --substrate {substrate:?}; expected tiny | medium | sparse | dense | all"
        );
        std::process::exit(2);
    }

    eprintln!(
        "machine parallelism: {} hardware threads",
        exec::available_parallelism()
    );
    let mut records = Vec::new();
    for (name, g) in &substrates {
        eprintln!(
            "benching {name}: {} nodes, {} edges ({iters} iters)",
            g.node_count(),
            g.edge_count()
        );
        bench_substrate(name, g, iters, &mut records);
    }

    println!(
        "{:<16} {:<10} {:<7} {:>5} {:>14}",
        "substrate", "op", "mode", "thr", "median_ns"
    );
    for r in &records {
        println!(
            "{:<16} {:<10} {:<7} {:>5} {:>14}",
            r.substrate,
            r.op,
            r.mode,
            r.threads.to_string(),
            r.median_ns
        );
    }
    // Scaling summary: each fixed count vs the 1-worker row.
    for (name, _) in &substrates {
        for (op, mode) in [
            ("enumerate", "exact"),
            ("overlap", "exact"),
            ("percolate", "exact"),
            ("percolate", "almost"),
            ("percolate-fused", "exact"),
            ("percolate-fused", "almost"),
        ] {
            let find = |threads: Threads| {
                records
                    .iter()
                    .find(|r| {
                        r.substrate == *name && r.op == op && r.mode == mode && r.threads == threads
                    })
                    .map(|r| r.median_ns)
            };
            if let Some(base) = find(Threads::Fixed(1)) {
                for t in THREAD_COUNTS.iter().skip(1) {
                    if let Some(ns) = find(Threads::Fixed(*t)) {
                        println!(
                            "scaling {name}/{op} ({mode}): {t} workers run {:.2}x vs 1",
                            base as f64 / ns.max(1) as f64
                        );
                    }
                }
            }
        }
        // Mode summary: the engine change itself, sequential rows.
        let find = |mode: &str| {
            records
                .iter()
                .find(|r| {
                    r.substrate == *name
                        && r.op == "percolate"
                        && r.mode == mode
                        && r.threads == Threads::Fixed(1)
                })
                .map(|r| r.median_ns)
        };
        if let (Some(exact), Some(almost)) = (find("exact"), find("almost")) {
            println!(
                "mode {name}/percolate: almost runs {:.2}x vs exact (1 worker)",
                exact as f64 / almost.max(1) as f64
            );
        }
        // Pipeline summary: fused vs staged, sequential rows, per mode.
        for mode in ["exact", "almost"] {
            let find = |op: &str| {
                records
                    .iter()
                    .find(|r| {
                        r.substrate == *name
                            && r.op == op
                            && r.mode == mode
                            && r.threads == Threads::Fixed(1)
                    })
                    .map(|r| r.min_ns)
            };
            if let (Some(staged), Some(fused)) = (find("percolate"), find("percolate-fused")) {
                println!(
                    "pipeline {name}/percolate ({mode}): fused runs {:.2}x vs staged (1 worker, minima)",
                    staged as f64 / fused.max(1) as f64
                );
            }
        }
    }

    std::fs::write(&out_path, to_json(&records)).expect("cannot write bench JSON");
    eprintln!("wrote {out_path}");

    if has("--check") {
        let violations = check(&records);
        if violations.is_empty() {
            eprintln!(
                "check passed: 4-worker and auto rows within 1.2x of sequential; \
                 almost mode at least 5x faster than exact and the fused pipeline \
                 at least 1.25x faster than staged on medium-internet{}",
                if exec::available_parallelism() >= 4 {
                    "; fused 4-worker runs at least 1.3x faster than 1-worker"
                } else {
                    " (fused scaling clause skipped: fewer than 4 hardware threads)"
                }
            );
        } else {
            for v in &violations {
                eprintln!("check FAILED: {v}");
            }
            std::process::exit(1);
        }
    }
}
