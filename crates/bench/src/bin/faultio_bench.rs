//! Durability-cost record for the v2 clique log.
//!
//! ```text
//! cargo run --release -p bench --bin faultio-bench -- \
//!     [--substrate small|sparse|dense|all] [--iters <n>] \
//!     [--seed <u64>] [--out BENCH_faultio.json] [--check]
//! ```
//!
//! The v2 log buys crash safety with per-segment framing, CRC32C
//! checksums, and a flush per sealed segment. This binary prices that
//! purchase: for each substrate it times
//!
//! - `build` at three checkpoint cadences — `none` (one giant segment,
//!   the uncheckpointed baseline), `default` (the library cadence), and
//!   `fine` (64 cliques per segment, aggressive durability);
//! - `replay` of the resulting logs (frame parsing + CRC verification
//!   per segment);
//! - `recover` of a torn copy (the salvage walk over every frame).
//!
//! `--check` turns the run into a CI gate: on every substrate, `build`
//! at the default cadence must stay within 1.05× of the uncheckpointed
//! build — checkpointing is sold as costing at most 5 % wall-clock, so
//! the gate measures exactly that claim.

use cpm_stream::{CliqueLogReader, LogBuildOptions};
use std::time::Instant;

/// Cadences benchmarked: label plus cliques-per-segment.
const CADENCES: [(&str, usize); 3] = [
    ("none", usize::MAX),
    ("default", cpm_stream::DEFAULT_CHECKPOINT_CLIQUES),
    ("fine", 64),
];

struct Record {
    substrate: String,
    op: &'static str,
    checkpoint: &'static str,
    median_ns: u128,
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_nanos());
        drop(out);
    }
    median_ns(samples)
}

fn bench_substrate(name: &str, g: &asgraph::Graph, iters: usize, records: &mut Vec<Record>) {
    let dir = std::env::temp_dir().join(format!("kclique_faultio_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (label, cadence) in CADENCES {
        let path = dir.join(format!("{name}_{label}.cliquelog"));
        let options = LogBuildOptions {
            checkpoint_cliques: cadence,
            ..LogBuildOptions::default()
        };
        let mut push = |op, median_ns| {
            records.push(Record {
                substrate: name.to_owned(),
                op,
                checkpoint: label,
                median_ns,
            });
        };
        push(
            "build",
            measure(iters, || {
                cpm_stream::build_clique_log(g, &path, &options).expect("build failed")
            }),
        );
        push(
            "replay",
            measure(iters, || {
                let mut reader = CliqueLogReader::open(&path).expect("open failed");
                let mut buf = Vec::new();
                let mut n = 0u64;
                while reader.read_next(&mut buf).expect("decode failed") {
                    n += 1;
                }
                n
            }),
        );
        // Tear a copy at 2/3 of the file and time the salvage walk.
        let bytes = std::fs::read(&path).unwrap();
        let torn = dir.join(format!("{name}_{label}_torn.cliquelog"));
        push(
            "recover",
            measure(iters, || {
                std::fs::write(&torn, &bytes[..bytes.len() * 2 / 3]).unwrap();
                CliqueLogReader::recover(&torn).expect("recover failed")
            }),
        );
        std::fs::remove_file(&torn).ok();
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c)),
        "unexpected character in JSON token {s:?}"
    );
    s
}

fn to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"substrate\": \"{}\", \"op\": \"{}\", \"checkpoint\": \"{}\", \"median_ns\": {}}}{}\n",
            json_escape_free(&r.substrate),
            json_escape_free(r.op),
            json_escape_free(r.checkpoint),
            r.median_ns,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// The `--check` gate: default-cadence builds within `BOUND`× of the
/// uncheckpointed build on every substrate. Returns violation messages.
fn check(records: &[Record]) -> Vec<String> {
    const BOUND: f64 = 1.05;
    let mut violations = Vec::new();
    let find = |sub: &str, checkpoint: &str| {
        records
            .iter()
            .find(|r| r.substrate == sub && r.op == "build" && r.checkpoint == checkpoint)
            .map(|r| r.median_ns)
    };
    let mut seen: Vec<&str> = Vec::new();
    for r in records {
        if !seen.contains(&r.substrate.as_str()) {
            seen.push(&r.substrate);
        }
    }
    for sub in seen {
        let (Some(base), Some(with)) = (find(sub, "none"), find(sub, "default")) else {
            continue;
        };
        let ratio = with as f64 / base.max(1) as f64;
        if ratio > BOUND {
            violations.push(format!(
                "{sub}/build @ default cadence is {ratio:.3}x the uncheckpointed build \
                 (bound {BOUND}x)"
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let substrate = get("--substrate").unwrap_or_else(|| "all".to_owned());
    let iters: usize = get("--iters").map_or(7, |v| v.parse().expect("bad --iters"));
    let seed: u64 = get("--seed").map_or(7, |v| v.parse().expect("bad --seed"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_faultio.json".to_owned());

    let mut substrates: Vec<(&str, asgraph::Graph)> = Vec::new();
    let want = |name: &str| substrate == "all" || substrate == name;
    if want("sparse") {
        substrates.push(("sparse300", bench::random_graph(300, 0.05, seed)));
    }
    if want("dense") {
        substrates.push(("dense60", bench::random_graph(60, 0.5, seed)));
    }
    if want("small") {
        substrates.push(("small-internet", bench::small_internet(seed).graph));
    }
    if substrates.is_empty() {
        eprintln!("unknown --substrate {substrate:?}; expected small | sparse | dense | all");
        std::process::exit(2);
    }

    let mut records = Vec::new();
    for (name, g) in &substrates {
        eprintln!(
            "benchmarking {name}: {} nodes, {} edges",
            g.node_count(),
            g.edge_count()
        );
        bench_substrate(name, g, iters, &mut records);
    }

    let json = to_json(&records);
    std::fs::write(&out_path, &json).expect("cannot write output");
    eprintln!("wrote {} records to {out_path}", records.len());

    if has("--check") {
        let violations = check(&records);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("CHECK FAILED: {v}");
            }
            std::process::exit(1);
        }
        eprintln!("check passed: default-cadence builds within 1.05x of uncheckpointed");
    }
}
