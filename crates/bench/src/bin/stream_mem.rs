//! Peak-heap shoot-out: batch `cpm::percolate` vs streaming
//! `cpm_stream::stream_percolate` on a seeded synthetic Internet.
//!
//! ```text
//! cargo run --release -p bench --features memprof --bin stream-mem [tiny|small] [seed]
//! ```
//!
//! Both pipelines produce the same communities (property-tested in
//! `crates/stream/tests/oracle.rs`); this binary quantifies what the
//! streaming engine buys: it never materialises the maximal-clique set
//! or the clique-overlap edge list, so its peak heap growth over the
//! resident graph is strictly lower.

use cpm_stream::GraphSource;

#[global_allocator]
static ALLOC: bench::memprof::CountingAlloc = bench::memprof::CountingAlloc;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale = args.next().unwrap_or_else(|| "tiny".to_owned());
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(7);

    let topo = match scale.as_str() {
        "tiny" => bench::tiny_internet(seed),
        "small" => bench::small_internet(seed),
        other => {
            eprintln!("unknown scale {other:?}; expected tiny | small");
            std::process::exit(2);
        }
    };
    let g = &topo.graph;
    println!(
        "InternetModel scale={scale} seed={seed}: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    let (batch, batch_peak) = bench::memprof::measure_peak(|| cpm::percolate(g));
    let batch_total = batch.total_communities();
    let k_max = batch.k_max().unwrap_or(0);
    drop(batch);

    let (stream, stream_peak) = bench::memprof::measure_peak(|| {
        cpm_stream::stream_percolate(&mut GraphSource::new(g)).expect("in-memory source")
    });
    let stream_total = stream.total_communities();
    assert_eq!(
        stream.k_max().unwrap_or(0),
        k_max,
        "pipelines disagree on k_max"
    );
    drop(stream);

    println!("k_max {k_max}; communities: batch {batch_total}, stream {stream_total}");
    println!("peak heap growth while percolating (graph itself excluded):");
    println!(
        "  batch  cpm::percolate            {:>12}",
        human(batch_peak)
    );
    println!(
        "  stream cpm_stream::stream_percolate {:>9}",
        human(stream_peak)
    );
    if stream_peak < batch_peak {
        println!(
            "  -> streaming peak is {:.1}% of batch ({} saved)",
            100.0 * stream_peak as f64 / batch_peak.max(1) as f64,
            human(batch_peak - stream_peak)
        );
    } else {
        println!("  -> WARNING: streaming did not reduce peak heap on this input");
        std::process::exit(1);
    }
}
