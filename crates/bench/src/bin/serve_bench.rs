//! Query-daemon latency/throughput record.
//!
//! ```text
//! cargo run --release -p bench --bin serve-bench -- \
//!     [--substrate tiny|small] [--seed <u64>] [--requests <n>] \
//!     [--out BENCH_serve.json] [--check]
//! ```
//!
//! Starts an in-process `serve::Server` over the substrate's clique
//! log, then drives it over real loopback TCP from 1, 4, and 8
//! keep-alive client threads, in two modes per endpoint:
//!
//! * `latency` — strict request/response ping-pong; every request's
//!   wall time is sampled, p50/p99 reported.
//! * `pipelined` — requests written in batches of [`PIPELINE_DEPTH`]
//!   per flush, responses drained in order; this is the throughput
//!   shape (per-request sample = batch time / depth).
//!
//! The JSON written to `--out` is the record committed as
//! `BENCH_serve.json`.
//!
//! `--check` turns the run into a CI gate on the acceptance envelope:
//! at 4 client threads the `membership` endpoint must sustain at least
//! 50k requests/second aggregate in pipelined mode, with strict
//! ping-pong p99 latency under 1 ms.

use exec::CancelToken;
use serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

/// Requests per batch write in pipelined mode.
const PIPELINE_DEPTH: usize = 8;

/// Warmup requests per client before sampling starts.
const WARMUP: usize = 300;

struct Record {
    substrate: String,
    endpoint: &'static str,
    clients: usize,
    mode: &'static str,
    requests: usize,
    p50_ns: u128,
    p99_ns: u128,
    qps: u64,
}

/// A keep-alive connection speaking the daemon's wire format.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, stream }
    }

    fn read_response(&mut self) -> u16 {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        status
    }

    /// Strict ping-pong: returns the request's wall time.
    fn roundtrip(&mut self, target: &str) -> u128 {
        let req = format!("GET {target} HTTP/1.1\r\nHost: b\r\n\r\n");
        let t0 = Instant::now();
        self.stream.write_all(req.as_bytes()).expect("write");
        let status = self.read_response();
        let elapsed = t0.elapsed().as_nanos();
        assert_eq!(status, 200, "GET {target}");
        elapsed
    }

    /// One pipelined batch: write all targets in one flush, read all
    /// responses. Returns the batch's wall time.
    fn batch(&mut self, targets: &[String]) -> u128 {
        let mut buf = String::new();
        for target in targets {
            buf.push_str(&format!("GET {target} HTTP/1.1\r\nHost: b\r\n\r\n"));
        }
        let t0 = Instant::now();
        self.stream.write_all(buf.as_bytes()).expect("write batch");
        for target in targets {
            let status = self.read_response();
            assert_eq!(status, 200, "GET {target}");
        }
        t0.elapsed().as_nanos()
    }
}

/// The per-client request target sequence: a multiplicative-hash walk
/// over the AS space so consecutive requests hit unrelated postings.
fn target(endpoint: &str, node_count: usize, client: usize, i: usize) -> String {
    let v = ((client * 1_000_003 + i).wrapping_mul(2_654_435_761)) % node_count;
    match endpoint {
        "membership" => format!("/membership/{v}"),
        "common" => {
            let w = (v + 1 + i % 97) % node_count;
            format!("/common/{v}/{w}")
        }
        "healthz" => "/healthz".to_owned(),
        other => panic!("unknown endpoint {other}"),
    }
}

fn quantile(sorted: &[u128], q: f64) -> u128 {
    let idx = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Runs one (endpoint, clients, mode) cell and returns its record.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    substrate: &str,
    addr: SocketAddr,
    node_count: usize,
    endpoint: &'static str,
    clients: usize,
    pipelined: bool,
    per_client: usize,
) -> Record {
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..WARMUP {
                    client.roundtrip(&target(endpoint, node_count, c, i));
                }
                let mut samples: Vec<u128> = Vec::with_capacity(per_client);
                if pipelined {
                    let mut done = 0usize;
                    while done < per_client {
                        let depth = PIPELINE_DEPTH.min(per_client - done);
                        let targets: Vec<String> = (0..depth)
                            .map(|j| target(endpoint, node_count, c, done + j))
                            .collect();
                        let batch_ns = client.batch(&targets);
                        let per_req = batch_ns / depth as u128;
                        samples.extend(std::iter::repeat_n(per_req, depth));
                        done += depth;
                    }
                } else {
                    for i in 0..per_client {
                        samples.push(client.roundtrip(&target(endpoint, node_count, c, i)));
                    }
                }
                samples
            })
        })
        .collect();

    let mut samples: Vec<u128> = Vec::with_capacity(clients * per_client);
    for h in handles {
        samples.extend(h.join().expect("client thread"));
    }
    let elapsed = wall.elapsed();
    samples.sort_unstable();
    let requests = samples.len();
    // Wall time includes each client's warmup; subtracting it per
    // client is not possible from out here, so fold warmup into the
    // request count for a conservative qps.
    let total = requests + clients * WARMUP;
    let qps = (total as f64 / elapsed.as_secs_f64()) as u64;
    Record {
        substrate: substrate.to_owned(),
        endpoint,
        clients,
        mode: if pipelined { "pipelined" } else { "latency" },
        requests,
        p50_ns: quantile(&samples, 0.50),
        p99_ns: quantile(&samples, 0.99),
        qps,
    }
}

fn to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"substrate\": \"{}\", \"endpoint\": \"{}\", \"clients\": {}, \
             \"mode\": \"{}\", \"requests\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"qps\": {}}}{}\n",
            r.substrate,
            r.endpoint,
            r.clients,
            r.mode,
            r.requests,
            r.p50_ns,
            r.p99_ns,
            r.qps,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// The `--check` acceptance gate (see module docs).
fn check(records: &[Record]) -> Vec<String> {
    const MIN_QPS: u64 = 50_000;
    const MAX_P99_NS: u128 = 1_000_000;
    let mut violations = Vec::new();
    let find = |mode: &str| {
        records
            .iter()
            .find(|r| r.endpoint == "membership" && r.clients == 4 && r.mode == mode)
    };
    match find("pipelined") {
        Some(r) if r.qps < MIN_QPS => violations.push(format!(
            "membership @ 4 clients pipelined: {} qps < required {MIN_QPS}",
            r.qps
        )),
        None => violations.push("no membership/4-client/pipelined row".to_owned()),
        _ => {}
    }
    match find("latency") {
        Some(r) if r.p99_ns > MAX_P99_NS => violations.push(format!(
            "membership @ 4 clients: p99 {}ns > required {MAX_P99_NS}ns",
            r.p99_ns
        )),
        None => violations.push("no membership/4-client/latency row".to_owned()),
        _ => {}
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let substrate = get("--substrate").unwrap_or_else(|| "small".to_owned());
    let seed: u64 = get("--seed").map_or(7, |v| v.parse().expect("bad --seed"));
    let per_client: usize = get("--requests").map_or(4000, |v| v.parse().expect("bad --requests"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let (name, topo) = match substrate.as_str() {
        "tiny" => ("tiny-internet", bench::tiny_internet(seed)),
        "small" => ("small-internet", bench::small_internet(seed)),
        other => {
            eprintln!("unknown --substrate {other:?}; expected tiny | small");
            std::process::exit(2);
        }
    };
    let g = topo.graph;
    let node_count = g.node_count();
    eprintln!(
        "substrate {name}: {} nodes, {} edges; machine parallelism {}",
        node_count,
        g.edge_count(),
        exec::available_parallelism()
    );

    let dir = std::env::temp_dir().join(format!("kclique_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join(format!("{name}.cliquelog"));
    let info = cpm_stream::write_clique_log(&g, &log).expect("write clique log");
    eprintln!(
        "clique log: {} cliques, largest {}",
        info.clique_count, info.max_size
    );

    let mut config = ServeConfig::new("127.0.0.1:0", &log);
    config.threads = CLIENT_COUNTS.iter().max().copied().unwrap_or(1) + 1;
    let token = CancelToken::new();
    let server = Server::bind(&config, &token).expect("bind server");
    let addr = server.local_addr().expect("local addr");
    let run_token = token.clone();
    let server_thread = std::thread::spawn(move || server.run(&run_token).expect("server run"));
    eprintln!("daemon on http://{addr} with {} workers", config.threads);

    let mut records = Vec::new();
    for endpoint in ["membership", "common", "healthz"] {
        for &clients in &CLIENT_COUNTS {
            for pipelined in [false, true] {
                let r = run_cell(
                    name, addr, node_count, endpoint, clients, pipelined, per_client,
                );
                eprintln!(
                    "{endpoint:<11} clients={clients} {:<9} p50 {:>7}ns p99 {:>8}ns {:>7} qps",
                    r.mode, r.p50_ns, r.p99_ns, r.qps
                );
                records.push(r);
            }
        }
    }

    println!(
        "{:<16} {:<11} {:>7} {:<9} {:>10} {:>10} {:>8}",
        "substrate", "endpoint", "clients", "mode", "p50_ns", "p99_ns", "qps"
    );
    for r in &records {
        println!(
            "{:<16} {:<11} {:>7} {:<9} {:>10} {:>10} {:>8}",
            r.substrate, r.endpoint, r.clients, r.mode, r.p50_ns, r.p99_ns, r.qps
        );
    }

    std::fs::write(&out_path, to_json(&records)).expect("cannot write bench JSON");
    eprintln!("wrote {out_path}");

    // Stop the daemon cleanly before the verdict.
    token.cancel();
    server_thread.join().expect("server thread");

    if has("--check") {
        let violations = check(&records);
        if violations.is_empty() {
            eprintln!("check passed: membership @ 4 clients sustains >= 50k qps with p99 < 1ms");
        } else {
            for v in &violations {
                eprintln!("check FAILED: {v}");
            }
            std::process::exit(1);
        }
    }
}
