//! Before/after record for the fused overlap→union sweep.
//!
//! ```text
//! cargo run --release -p bench --features memprof --bin sweep-bench -- \
//!     [--threads <n>] [--iters <n>] [--seed <u64>] [--out BENCH_sweep.json]
//! ```
//!
//! For each preset this times the full percolation under both sweep
//! implementations — `legacy` (flat `OverlapEdge` list, sort-free
//! re-bucketing copy, HashMap grouping) and `fused` (per-overlap radix
//! strata, saturating counts, root-indexed grouping) — sequentially and
//! through the parallel pipeline at `--threads` workers. The "before"
//! row is `percolate`/`legacy` (the pre-PR default); the "after" row is
//! `percolate_par`/`fused` (the post-PR default entry point). Median
//! wall time over `--iters` runs plus one peak-heap measurement through
//! the `memprof` counting allocator, written as identifier-safe JSON
//! and committed as `BENCH_sweep.json`.

use cliques::Kernel;
use cpm::Sweep;
use std::time::Instant;

#[global_allocator]
static ALLOC: bench::memprof::CountingAlloc = bench::memprof::CountingAlloc;

struct Record {
    substrate: String,
    op: &'static str,
    sweep: Sweep,
    threads: usize,
    median_ns: u128,
    peak_bytes: usize,
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `iters` runs of `f` and measures one run's peak heap growth.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> (u128, usize) {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_nanos());
        drop(out);
    }
    let (_, peak) = bench::memprof::measure_peak(&mut f);
    (median_ns(samples), peak)
}

fn bench_substrate(
    name: &str,
    g: &asgraph::Graph,
    threads: usize,
    iters: usize,
    records: &mut Vec<Record>,
) {
    for sweep in [Sweep::Legacy, Sweep::Fused] {
        let mut push = |op, threads, (median_ns, peak_bytes)| {
            records.push(Record {
                substrate: name.to_owned(),
                op,
                sweep,
                threads,
                median_ns,
                peak_bytes,
            });
        };
        push(
            "percolate",
            1,
            measure(iters, || cpm::percolate_with(g, Kernel::Auto, sweep)),
        );
        push(
            "percolate_par",
            threads,
            measure(iters, || {
                cpm::parallel::percolate_parallel_with(g, threads, Kernel::Auto, sweep)
            }),
        );
    }
}

fn json_escape_free(s: &str) -> &str {
    // Every string we emit is an identifier-like token; keep the writer
    // honest anyway.
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_".contains(c)),
        "unexpected character in JSON token {s:?}"
    );
    s
}

fn to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"substrate\": \"{}\", \"op\": \"{}\", \"sweep\": \"{}\", \"threads\": {}, \"median_ns\": {}, \"peak_bytes\": {}}}{}\n",
            json_escape_free(&r.substrate),
            json_escape_free(r.op),
            json_escape_free(&r.sweep.to_string()),
            r.threads,
            r.median_ns,
            r.peak_bytes,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let threads: usize = get("--threads").map_or(4, |v| v.parse().expect("bad --threads"));
    let iters: usize = get("--iters").map_or(9, |v| v.parse().expect("bad --iters"));
    let seed: u64 = get("--seed").map_or(7, |v| v.parse().expect("bad --seed"));
    let out_path = get("--out").unwrap_or_else(|| "BENCH_sweep.json".to_owned());

    let substrates: Vec<(&str, asgraph::Graph)> = vec![
        ("dense60", bench::random_graph(60, 0.5, seed)),
        ("tiny-internet", bench::tiny_internet(seed).graph),
        ("small-internet", bench::small_internet(seed).graph),
    ];

    let mut records = Vec::new();
    for (name, g) in &substrates {
        eprintln!(
            "benching {name}: {} nodes, {} edges ({iters} iters, {threads} threads)",
            g.node_count(),
            g.edge_count()
        );
        bench_substrate(name, g, threads, iters, &mut records);
    }

    println!(
        "{:<16} {:<14} {:<7} {:>3} {:>14} {:>12}",
        "substrate", "op", "sweep", "thr", "median_ns", "peak_bytes"
    );
    for r in &records {
        println!(
            "{:<16} {:<14} {:<7} {:>3} {:>14} {:>12}",
            r.substrate, r.op, r.sweep, r.threads, r.median_ns, r.peak_bytes
        );
    }
    // Before/after summary. "Before" is what the pre-PR binary ran by
    // default (legacy sequential percolate); "after" is the post-PR
    // default entry point under the same conditions plus the parallel
    // headline the acceptance gate checks.
    for (name, _) in &substrates {
        let find = |op: &str, sweep: Sweep| {
            records
                .iter()
                .find(|r| r.substrate == *name && r.op == op && r.sweep == sweep)
        };
        if let (Some(before), Some(seq), Some(par)) = (
            find("percolate", Sweep::Legacy),
            find("percolate", Sweep::Fused),
            find("percolate_par", Sweep::Fused),
        ) {
            println!(
                "speedup {name}: fused percolate is {:.2}x vs legacy (seq)",
                before.median_ns as f64 / seq.median_ns.max(1) as f64
            );
            println!(
                "speedup {name}: fused percolate_par ({threads}t) is {:.2}x vs legacy seq percolate",
                before.median_ns as f64 / par.median_ns.max(1) as f64
            );
            println!(
                "peak {name}: fused percolate uses {:.1}% of legacy ({} vs {} bytes)",
                100.0 * seq.peak_bytes as f64 / before.peak_bytes.max(1) as f64,
                seq.peak_bytes,
                before.peak_bytes
            );
        }
    }

    std::fs::write(&out_path, to_json(&records)).expect("cannot write bench JSON");
    eprintln!("wrote {out_path}");
}
