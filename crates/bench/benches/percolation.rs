//! CPM benchmarks and ablations.
//!
//! - sequential vs multi-worker Lightweight Parallel CPM (the paper's
//!   companion-algorithm claim, P.CPM in DESIGN.md);
//! - the single incremental descending-k sweep vs re-percolating every k
//!   from scratch (the repository's core algorithmic choice);
//! - inverted-index overlap counting vs naive all-pairs;
//! - the fast maximal-clique reduction vs the literal definition.

use bench::{random_graph, small_internet, tiny_internet};
use cpm::Dsu;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cpm_end_to_end(c: &mut Criterion) {
    let tiny = tiny_internet(42);
    let small = small_internet(42);

    let mut group = c.benchmark_group("cpm_end_to_end");
    group.sample_size(10);
    group.bench_function("sequential/tiny400", |b| {
        b.iter(|| black_box(cpm::percolate(&tiny.graph)))
    });
    group.bench_function("sequential/small2000", |b| {
        b.iter(|| black_box(cpm::percolate(&small.graph)))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("parallel{threads}/small2000"), |b| {
            b.iter(|| black_box(cpm::parallel::percolate_parallel(&small.graph, threads)))
        });
    }
    group.finish();
}

fn sweep_ablation(c: &mut Criterion) {
    // Fixed clique/overlap input; compare one incremental sweep for all k
    // against an independent DSU pass per k.
    let topo = small_internet(7);
    let cliques_set = cliques::max_cliques(&topo.graph);
    let index = cpm::build_vertex_index(&cliques_set, topo.graph.node_count());
    let edges = cpm::overlap_edges(&cliques_set, &index);
    let k_max = cliques_set.max_size();

    let mut group = c.benchmark_group("sweep_ablation");
    group.sample_size(10);
    group.bench_function("incremental_all_k", |b| {
        b.iter(|| {
            black_box(cpm::percolate_with_cliques(
                topo.graph.node_count(),
                cliques_set.clone(),
            ))
        })
    });
    group.bench_function("from_scratch_per_k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in 2..=k_max {
                let mut dsu = Dsu::new(cliques_set.len());
                for e in &edges {
                    if e.overlap as usize >= k - 1 {
                        dsu.union(e.a, e.b);
                    }
                }
                total += dsu.set_count();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn overlap_ablation(c: &mut Criterion) {
    let topo = tiny_internet(9);
    let cliques_set = cliques::max_cliques(&topo.graph);
    let index = cpm::build_vertex_index(&cliques_set, topo.graph.node_count());

    let mut group = c.benchmark_group("overlap_ablation");
    group.sample_size(10);
    group.bench_function("inverted_index", |b| {
        b.iter(|| black_box(cpm::overlap_edges(&cliques_set, &index)))
    });
    group.bench_function("naive_all_pairs", |b| {
        b.iter(|| {
            let mut edges = Vec::new();
            for i in 0..cliques_set.len() {
                for j in (i + 1)..cliques_set.len() {
                    let (a, b2) = (cliques_set.get(i), cliques_set.get(j));
                    let (mut x, mut y, mut shared) = (0, 0, 0u32);
                    while x < a.len() && y < b2.len() {
                        match a[x].cmp(&b2[y]) {
                            std::cmp::Ordering::Less => x += 1,
                            std::cmp::Ordering::Greater => y += 1,
                            std::cmp::Ordering::Equal => {
                                shared += 1;
                                x += 1;
                                y += 1;
                            }
                        }
                    }
                    if shared > 0 {
                        edges.push((i as u32, j as u32, shared));
                    }
                }
            }
            black_box(edges)
        })
    });
    group.finish();
}

fn definition_vs_reduction(c: &mut Criterion) {
    let g = random_graph(60, 0.18, 3);
    let mut group = c.benchmark_group("definition_vs_reduction");
    group.sample_size(10);
    group.bench_function("maximal_clique_reduction_all_k", |b| {
        b.iter(|| black_box(cpm::percolate(&g)))
    });
    group.bench_function("maximal_clique_reduction_k4_only", |b| {
        b.iter(|| black_box(cpm::percolate_at(&g, 4)))
    });
    group.bench_function("scp_k4_only", |b| {
        b.iter(|| black_box(cpm::scp::scp_communities(&g, 4)))
    });
    group.bench_function("literal_definition_k4_only", |b| {
        b.iter(|| black_box(cpm::naive::naive_communities(&g, 4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    cpm_end_to_end,
    sweep_ablation,
    overlap_ablation,
    definition_vs_reduction
);
criterion_main!(benches);
