//! Ablation bench: the Bron–Kerbosch family.
//!
//! Pivoting vs no pivoting, degeneracy ordering vs plain recursion, and
//! the striped parallel enumerator — the DESIGN.md ablation for why the
//! degeneracy variant is the default on sparse AS-like graphs.

use bench::{random_graph, tiny_internet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bk_variants(c: &mut Criterion) {
    let sparse = random_graph(300, 0.03, 1);
    let dense = random_graph(60, 0.4, 2);
    let internet = tiny_internet(42);

    let mut group = c.benchmark_group("bron_kerbosch");
    group.sample_size(20);
    group.bench_function("basic/sparse300", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::basic(&sparse)))
    });
    group.bench_function("pivot/sparse300", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::pivot(&sparse)))
    });
    group.bench_function("degeneracy/sparse300", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::degeneracy(&sparse)))
    });
    group.bench_function("basic/dense60", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::basic(&dense)))
    });
    group.bench_function("pivot/dense60", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::pivot(&dense)))
    });
    group.bench_function("degeneracy/dense60", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::degeneracy(&dense)))
    });
    group.bench_function("degeneracy/internet400", |b| {
        b.iter(|| black_box(cliques::bron_kerbosch::degeneracy(&internet.graph)))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("parallel{threads}/internet400"), |b| {
            b.iter(|| {
                black_box(cliques::parallel::max_cliques_parallel(
                    &internet.graph,
                    threads,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bk_variants);
criterion_main!(benches);
