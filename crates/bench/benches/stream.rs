//! Wall-time comparison of the batch and streaming percolation
//! pipelines (the peak-memory half of the comparison lives in the
//! `stream-mem` binary, which needs the `memprof` allocator).

use cpm_stream::{GraphSource, LogSource};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn stream_vs_batch(c: &mut Criterion) {
    let topo = bench::tiny_internet(7);
    let g = &topo.graph;

    let dir = std::env::temp_dir().join(format!("kclique_bench_stream_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log = dir.join("tiny.cliquelog");
    cpm_stream::write_clique_log(g, &log).expect("log build");

    let mut group = c.benchmark_group("stream/tiny-internet");
    group.bench_function("batch_percolate_all_k", |b| {
        b.iter(|| cpm::percolate(black_box(g)));
    });
    group.bench_function("stream_percolate_all_k", |b| {
        b.iter(|| {
            cpm_stream::stream_percolate(&mut GraphSource::new(black_box(g)))
                .expect("in-memory source")
        });
    });
    group.bench_function("stream_percolate_all_k_from_log", |b| {
        b.iter(|| {
            let mut src = LogSource::open(black_box(&log)).expect("log open");
            cpm_stream::stream_percolate(&mut src).expect("log replay")
        });
    });
    group.bench_function("batch_percolate_at_k4", |b| {
        b.iter(|| cpm::percolate_at(black_box(g), 4));
    });
    group.bench_function("stream_percolate_at_k4", |b| {
        b.iter(|| {
            cpm_stream::stream_percolate_at(&mut GraphSource::new(black_box(g)), 4)
                .expect("in-memory source")
        });
    });
    // The set kernel only accelerates the enumeration half of the
    // stream; the log bytes (and every community) stay identical.
    for kernel in [cpm_stream::Kernel::Merge, cpm_stream::Kernel::Bitset] {
        group.bench_function(format!("stream_percolate_all_k/{kernel}"), |b| {
            b.iter(|| {
                cpm_stream::stream_percolate(&mut GraphSource::with_kernel(black_box(g), kernel))
                    .expect("in-memory source")
            });
        });
        group.bench_function(format!("clique_log_build/{kernel}"), |b| {
            let path = dir.join(format!("rebuild-{kernel}.cliquelog"));
            b.iter(|| {
                cpm_stream::write_clique_log_with(black_box(g), kernel, &path).expect("log build")
            });
        });
    }
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, stream_vs_batch);
criterion_main!(benches);
