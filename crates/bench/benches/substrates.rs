//! Substrate benchmarks: graph primitives, peeling baselines, and the
//! topology generator.

use bench::{random_graph, small_internet, tiny_internet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn graph_primitives(c: &mut Criterion) {
    let g = small_internet(42).graph;
    let mut group = c.benchmark_group("graph_primitives");
    group.bench_function("build_from_edges", |b| {
        let edges: Vec<_> = g.edges().collect();
        b.iter(|| {
            black_box(asgraph::Graph::from_edges(
                g.node_count(),
                edges.iter().copied(),
            ))
        })
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| black_box(asgraph::components::connected_components(&g)))
    });
    group.bench_function("degeneracy_order", |b| {
        b.iter(|| black_box(asgraph::ordering::degeneracy_order(&g)))
    });
    group.bench_function("triangle_count", |b| {
        b.iter(|| black_box(asgraph::metrics::triangle_count(&g)))
    });
    group.finish();
}

fn dsu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsu");
    group.bench_function("union_find_100k", |b| {
        b.iter(|| {
            let mut d = cpm::Dsu::new(100_000);
            for i in 0..99_999u32 {
                d.union(i, i + 1);
            }
            black_box(d.set_count())
        })
    });
    group.finish();
}

fn baselines(c: &mut Criterion) {
    let g = tiny_internet(42).graph;
    let er = random_graph(150, 0.1, 5);
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("kcore/internet400", |b| {
        b.iter(|| black_box(baselines::kcore::decompose(&g)))
    });
    group.bench_function("kdense_k4/internet400", |b| {
        b.iter(|| black_box(baselines::kdense::communities(&g, 4)))
    });
    group.bench_function("gce/er150", |b| {
        b.iter(|| {
            black_box(baselines::gce::detect(
                &er,
                &baselines::gce::GceConfig {
                    max_size: 60,
                    max_seeds: Some(30),
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

fn generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    group.bench_function("tiny400", |b| {
        b.iter(|| black_box(topology::generate(&topology::ModelConfig::tiny(1)).unwrap()))
    });
    group.bench_function("small2000", |b| {
        b.iter(|| black_box(topology::generate(&topology::ModelConfig::small(1)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, graph_primitives, dsu, baselines, generator);
criterion_main!(benches);
