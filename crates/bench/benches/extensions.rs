//! Benchmarks for the extension subsystems: Louvain, SCP, weighted CPM,
//! rewiring, and evolution matching.

use bench::{random_graph, tiny_internet};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn louvain(c: &mut Criterion) {
    let topo = tiny_internet(42);
    let mut group = c.benchmark_group("louvain");
    group.sample_size(10);
    group.bench_function("internet400", |b| {
        b.iter(|| black_box(baselines::louvain::louvain(&topo.graph)))
    });
    group.finish();
}

fn scp(c: &mut Criterion) {
    let g = random_graph(80, 0.12, 3);
    let mut group = c.benchmark_group("scp");
    group.sample_size(10);
    group.bench_function("stream_k3/er80", |b| {
        b.iter(|| black_box(cpm::scp::scp_communities(&g, 3)))
    });
    group.bench_function("stream_k4/er80", |b| {
        b.iter(|| black_box(cpm::scp::scp_communities(&g, 4)))
    });
    group.finish();
}

fn weighted(c: &mut Criterion) {
    let g = random_graph(40, 0.25, 5);
    let mut b = asgraph::weighted::WeightedGraphBuilder::with_nodes(g.node_count());
    let mut w = 0.1;
    for (u, v) in g.edges() {
        b.add_edge(u, v, w);
        w = (w * 1.1) % 10.0 + 0.1;
    }
    let wg = b.build();
    let mut group = c.benchmark_group("weighted_cpm");
    group.sample_size(10);
    group.bench_function("k3_thresholded/er40", |bch| {
        bch.iter(|| black_box(cpm::weighted::weighted_communities(&wg, 3, 1.0)))
    });
    group.finish();
}

fn rewiring(c: &mut Criterion) {
    let topo = tiny_internet(42);
    let mut group = c.benchmark_group("rewire");
    group.sample_size(10);
    group.bench_function("10m_swaps/internet400", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(asgraph::rewire::rewire(
                &topo.graph,
                10 * topo.graph.edge_count(),
                &mut rng,
            ))
        })
    });
    group.finish();
}

fn evolution(c: &mut Criterion) {
    let t0 = tiny_internet(42);
    let (t1, _) = topology::evolve(&t0, &topology::EvolveConfig::default());
    let r0 = cpm::percolate(&t0.graph);
    let r1 = cpm::percolate(&t1.graph);
    let mut group = c.benchmark_group("evolution");
    group.sample_size(10);
    group.bench_function("evolve_step/internet400", |b| {
        b.iter(|| black_box(topology::evolve(&t0, &topology::EvolveConfig::default())))
    });
    group.bench_function("match_covers_k4", |b| {
        b.iter(|| black_box(kclique_core::evolution::match_covers(&r0, &r1, 4, 0.3)))
    });
    group.finish();
}

criterion_group!(benches, louvain, scp, weighted, rewiring, evolution);
criterion_main!(benches);
