//! Merge vs bitset set-kernel micro-benchmarks.
//!
//! The same substrates the acceptance criteria name: a sparse and a
//! dense Erdős–Rényi graph plus the tiny/small synthetic Internets,
//! through every stage the kernel touches — sequential enumeration,
//! work-stealing parallel enumeration, overlap counting, and the full
//! percolation. The machine-readable twin of this bench is the
//! `kernel-bench` binary (which adds peak-heap via `memprof`).

use cliques::Kernel;
use cpm::{build_vertex_index, overlap_edges_with};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const KERNELS: [Kernel; 2] = [Kernel::Merge, Kernel::Bitset];

fn substrates() -> Vec<(&'static str, asgraph::Graph)> {
    vec![
        ("sparse300", bench::random_graph(300, 0.05, 1)),
        ("dense60", bench::random_graph(60, 0.5, 2)),
        ("tiny-internet", bench::tiny_internet(7).graph),
        ("small-internet", bench::small_internet(7).graph),
    ]
}

fn enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/enumerate");
    group.sample_size(10);
    for (name, g) in &substrates() {
        for kernel in KERNELS {
            group.bench_function(format!("{name}/{kernel}"), |b| {
                b.iter(|| black_box(cliques::max_cliques_with(black_box(g), kernel)));
            });
        }
    }
    group.finish();
}

fn enumerate_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/enumerate-par4");
    group.sample_size(10);
    for (name, g) in &substrates() {
        for kernel in KERNELS {
            group.bench_function(format!("{name}/{kernel}"), |b| {
                b.iter(|| {
                    black_box(cliques::parallel::max_cliques_parallel_with(
                        black_box(g),
                        4,
                        kernel,
                    ))
                });
            });
        }
    }
    group.finish();
}

fn overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/overlap");
    group.sample_size(10);
    for (name, g) in &substrates() {
        let mut cliques = cliques::max_cliques(g);
        cliques.canonicalize();
        let index = build_vertex_index(&cliques, g.node_count());
        for kernel in KERNELS {
            group.bench_function(format!("{name}/{kernel}"), |b| {
                b.iter(|| black_box(overlap_edges_with(black_box(&cliques), &index, kernel)));
            });
        }
    }
    group.finish();
}

fn percolate(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/percolate");
    group.sample_size(10);
    for (name, g) in &substrates() {
        for kernel in KERNELS {
            group.bench_function(format!("{name}/{kernel}"), |b| {
                b.iter(|| black_box(cpm::percolate_with_kernel(black_box(g), kernel)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, enumerate, enumerate_parallel, overlap, percolate);
criterion_main!(benches);
