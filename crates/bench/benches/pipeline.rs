//! Full-pipeline benchmark: everything each figure/table experiment runs
//! (generate → percolate → tree → metrics → tags → segments).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("analyze/tiny400", |b| {
        b.iter(|| black_box(kclique_core::analyze(&topology::ModelConfig::tiny(42), 2).unwrap()))
    });
    group.bench_function("analyze/small2000", |b| {
        b.iter(|| black_box(kclique_core::analyze(&topology::ModelConfig::small(42), 2).unwrap()))
    });
    group.finish();
}

fn analysis_stages(c: &mut Criterion) {
    let topo = topology::generate(&topology::ModelConfig::small(42)).unwrap();
    let result = cpm::percolate(&topo.graph);
    let tree = kclique_core::CommunityTree::build(&result);

    let mut group = c.benchmark_group("analysis_stages");
    group.sample_size(10);
    group.bench_function("tree_build", |b| {
        b.iter(|| black_box(kclique_core::CommunityTree::build(&result)))
    });
    group.bench_function("metric_rows", |b| {
        b.iter(|| black_box(kclique_core::metric_rows(&topo.graph, &result, &tree)))
    });
    group.bench_function("overlap_report", |b| {
        b.iter(|| black_box(kclique_core::overlap_report(&result, &tree)))
    });
    group.bench_function("community_tag_infos", |b| {
        b.iter(|| black_box(kclique_core::community_tag_infos(&topo, &result, &tree)))
    });
    group.finish();
}

fn percolation_kernels(c: &mut Criterion) {
    let topo = topology::generate(&topology::ModelConfig::small(42)).unwrap();
    let g = &topo.graph;

    let mut group = c.benchmark_group("pipeline/percolate-small2000");
    group.sample_size(10);
    for kernel in [cliques::Kernel::Merge, cliques::Kernel::Bitset] {
        group.bench_function(format!("sequential/{kernel}"), |b| {
            b.iter(|| black_box(cpm::percolate_with_kernel(black_box(g), kernel)))
        });
        group.bench_function(format!("parallel4/{kernel}"), |b| {
            b.iter(|| {
                black_box(cpm::parallel::percolate_parallel_with_kernel(
                    black_box(g),
                    4,
                    kernel,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, full_pipeline, analysis_stages, percolation_kernels);
criterion_main!(benches);
