//! Multi-threaded maximal-clique enumeration.
//!
//! The clique-enumeration half of the "Lightweight Parallel Clique
//! Percolation Method" (Gregori, Lenzini, Mainardi, Orsini): the
//! degeneracy-ordered outer loop of Bron–Kerbosch is embarrassingly
//! parallel — each outer vertex spawns an independent subproblem.
//!
//! Scheduling is an atomic-counter **work-stealing deal**: workers claim
//! chunks of [`STEAL_CHUNK`] consecutive outer vertices from a shared
//! counter until the order is exhausted. On power-law graphs a handful of
//! IXP-core subproblems dominate the total work; the static round-robin
//! stripe this replaced would leave every other worker idle while one
//! finished its oversized stripe, whereas dynamic claiming keeps all
//! workers busy to the tail. Each claimed chunk produces its own
//! [`CliqueSet`], and chunks are merged in ascending chunk order, so the
//! output is *identical to the sequential enumeration* — independent of
//! thread count and scheduling races.

use crate::bron_kerbosch::top_level_subproblem;
use crate::clique_set::CliqueSet;
use crate::kernel::{BitsetScratch, Kernel};
use asgraph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outer vertices claimed per `fetch_add`. Small enough that the heavy
/// hub subproblems of an AS-like graph cannot hide behind one claim,
/// large enough that the shared counter is not contended.
pub const STEAL_CHUNK: usize = 16;

/// Enumerates all maximal cliques of `g` using `threads` worker threads
/// and the default [`Kernel::Auto`] set kernel.
///
/// Output is identical — same cliques, same order — to
/// [`degeneracy`](crate::bron_kerbosch::degeneracy) for every thread
/// count: work-stolen chunks are merged back in chunk order.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cliques::parallel::max_cliques_parallel;
///
/// let g = Graph::complete(6);
/// let cliques = max_cliques_parallel(&g, 4);
/// assert_eq!(cliques.len(), 1);
/// ```
pub fn max_cliques_parallel(g: &Graph, threads: usize) -> CliqueSet {
    max_cliques_parallel_with(g, threads, Kernel::Auto)
}

/// [`max_cliques_parallel`] with an explicit set [`Kernel`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn max_cliques_parallel_with(g: &Graph, threads: usize, kernel: Kernel) -> CliqueSet {
    assert!(threads > 0, "need at least one thread");
    let ordering = asgraph::ordering::degeneracy_order(g);
    if threads == 1 || g.node_count() < 2 * threads {
        let mut out = CliqueSet::new();
        let mut scratch = BitsetScratch::default();
        for &v in &ordering.order {
            top_level_subproblem(g, v, &ordering.rank, kernel, &mut scratch, &mut out);
        }
        return out;
    }

    let rank = &ordering.rank;
    let order = &ordering.order;
    let next = AtomicUsize::new(0);
    let next_ref = &next;

    // Each worker returns (chunk start, cliques of that chunk) pairs.
    let mut chunks: Vec<(usize, CliqueSet)> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, CliqueSet)> = Vec::new();
                let mut scratch = BitsetScratch::default();
                loop {
                    let start = next_ref.fetch_add(STEAL_CHUNK, Ordering::Relaxed);
                    if start >= order.len() {
                        break;
                    }
                    let end = (start + STEAL_CHUNK).min(order.len());
                    let mut set = CliqueSet::new();
                    for &v in &order[start..end] {
                        top_level_subproblem(g, v, rank, kernel, &mut scratch, &mut set);
                    }
                    local.push((start, set));
                }
                local
            }));
        }
        for h in handles {
            chunks.extend(h.join().expect("clique worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    // Reassemble in chunk order: the result is the sequential enumeration
    // order, whatever the scheduling races did.
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let total: usize = chunks.iter().map(|(_, s)| s.total_members()).sum();
    let count: usize = chunks.iter().map(|(_, s)| s.len()).sum();
    let mut out = CliqueSet::with_capacity(count, total);
    for (_, set) in &chunks {
        out.merge(set);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bron_kerbosch::{degeneracy, degeneracy_with};

    fn canonical(mut s: CliqueSet) -> CliqueSet {
        s.sort_canonical();
        s
    }

    #[test]
    fn matches_sequential_on_small_graph() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        );
        let seq = canonical(degeneracy(&g));
        for threads in 1..=4 {
            let par = canonical(max_cliques_parallel(&g, threads));
            assert_eq!(seq, par, "thread count {threads}");
        }
    }

    #[test]
    fn work_stealing_preserves_sequential_order() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 120u32;
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.1) {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        // Not just the same set: the exact same enumeration order, for
        // every kernel and thread count.
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let seq = degeneracy_with(&g, kernel);
            for threads in [2, 3, 4, 7] {
                let par = max_cliques_parallel_with(&g, threads, kernel);
                assert_eq!(seq, par, "kernel {kernel}, threads {threads}");
            }
        }
    }

    #[test]
    fn matches_sequential_on_random_graph() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 60u32;
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.15) {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let seq = canonical(degeneracy(&g));
        let par = canonical(max_cliques_parallel(&g, 4));
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let g = Graph::complete(3);
        let _ = max_cliques_parallel(&g, 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert!(max_cliques_parallel(&g, 3).is_empty());
    }
}
