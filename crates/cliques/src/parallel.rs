//! Multi-threaded maximal-clique enumeration.
//!
//! The clique-enumeration half of the "Lightweight Parallel Clique
//! Percolation Method" (Gregori, Lenzini, Mainardi, Orsini): the
//! degeneracy-ordered outer loop of Bron–Kerbosch is embarrassingly
//! parallel — each outer vertex spawns an independent subproblem.
//!
//! Scheduling is an atomic-counter **work-stealing deal** over the
//! persistent [`exec::Pool`]: workers claim chunks of [`STEAL_CHUNK`]
//! consecutive outer vertices from a shared [`ChunkQueue`] until the
//! order is exhausted. On power-law graphs a handful of IXP-core
//! subproblems dominate the total work; the static round-robin stripe
//! this replaced would leave every other worker idle while one finished
//! its oversized stripe, whereas dynamic claiming keeps all workers
//! busy to the tail. Each claimed chunk produces its own [`CliqueSet`],
//! and chunks are merged in ascending chunk order, so the output is
//! *identical to the sequential enumeration* — independent of thread
//! count and scheduling races.
//!
//! Two things distinguish this from the per-call `crossbeam::scope`
//! version it replaced: workers are warm pool threads (woken, not
//! spawned), and each worker's [`BitsetScratch`] lives in its pool
//! arena, so the bitset row pool and local-index buffers persist across
//! calls instead of being reallocated every time. [`Threads::Auto`]
//! (the default for the CLI) additionally routes graphs below a work
//! threshold to the sequential path, so tiny substrates never pay
//! parallel overhead at all.

use crate::bron_kerbosch::{top_level_subproblem, top_level_visit_with};
use crate::clique_set::CliqueSet;
use crate::kernel::{BitsetScratch, Kernel};
use crate::sink::{sorted_into, CliqueConsumer};
use asgraph::{Graph, NodeId};
use exec::{CancelToken, Cancelled, ChunkQueue, OrderedAbsorber, Pool, Threads};
use std::ops::ControlFlow;
use std::sync::Mutex;

/// Outer vertices claimed per queue chunk. Small enough that the heavy
/// hub subproblems of an AS-like graph cannot hide behind one claim,
/// large enough that the shared counter is not contended.
pub const STEAL_CHUNK: usize = 16;

/// The `Threads::Auto` grain: edges of enumeration work per worker
/// before adding that worker pays. Below `2 × grain` edges the whole
/// enumeration runs on the calling thread (with pooled scratch), which
/// is what fixes the tiny-substrate `enumerate_par` regression.
const AUTO_EDGES_PER_WORKER: usize = 2_048;

/// Enumerates all maximal cliques of `g` using `threads` workers
/// (`usize` or [`Threads`]; `Threads::Auto` scales with the graph) and
/// the default [`Kernel::Auto`] set kernel.
///
/// Output is identical — same cliques, same order — to
/// [`degeneracy`](crate::bron_kerbosch::degeneracy) for every thread
/// count: work-stolen chunks are merged back in chunk order.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cliques::parallel::max_cliques_parallel;
///
/// let g = Graph::complete(6);
/// let cliques = max_cliques_parallel(&g, 4);
/// assert_eq!(cliques.len(), 1);
/// ```
pub fn max_cliques_parallel(g: &Graph, threads: impl Into<Threads>) -> CliqueSet {
    max_cliques_parallel_with(g, threads, Kernel::Auto)
}

/// [`max_cliques_parallel`] with an explicit set [`Kernel`].
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn max_cliques_parallel_with(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
) -> CliqueSet {
    max_cliques_parallel_impl(g, threads.into(), kernel, None)
        .expect("uncancellable enumeration cannot be cancelled")
}

/// [`max_cliques_parallel_with`] polling a [`CancelToken`] at every
/// chunk claim: workers stop taking work at the next chunk boundary,
/// run out through the job protocol (the pool stays reusable), partial
/// results are discarded, and the call returns [`Cancelled`].
///
/// # Errors
///
/// Returns [`Cancelled`] once the token trips.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn max_cliques_parallel_cancellable(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
    cancel: &CancelToken,
) -> Result<CliqueSet, Cancelled> {
    max_cliques_parallel_impl(g, threads.into(), kernel, Some(cancel))
}

fn max_cliques_parallel_impl(
    g: &Graph,
    threads: Threads,
    kernel: Kernel,
    cancel: Option<&CancelToken>,
) -> Result<CliqueSet, Cancelled> {
    let mut workers = threads.resolve(g.edge_count(), AUTO_EDGES_PER_WORKER);
    if g.node_count() < 2 * workers {
        workers = 1;
    }
    let ordering = asgraph::ordering::degeneracy_order(g);
    let order = ordering.order.as_slice();
    let rank = ordering.rank.as_slice();
    let pool = Pool::global();

    if workers == 1 {
        return pool.leader(|mut w| {
            let scratch = w.scratch_with(BitsetScratch::default);
            let mut out = CliqueSet::new();
            // Same cancellation granularity as the parallel path: one
            // poll per STEAL_CHUNK outer vertices.
            for chunk in order.chunks(STEAL_CHUNK) {
                if let Some(token) = cancel {
                    token.check()?;
                }
                for &v in chunk {
                    top_level_subproblem(g, v, rank, kernel, scratch, &mut out);
                }
            }
            Ok(out)
        });
    }

    // Each worker contributes (chunk start, cliques of that chunk)
    // pairs; reassembly sorts by start, so the result is the sequential
    // enumeration order whatever the scheduling races did.
    let queue = ChunkQueue::new(order.len(), STEAL_CHUNK);
    let chunks: Mutex<Vec<(usize, CliqueSet)>> = Mutex::new(Vec::new());
    pool.run(workers, |mut w| {
        let scratch = w.scratch_with(BitsetScratch::default);
        let mut local: Vec<(usize, CliqueSet)> = Vec::new();
        let claim = || match cancel {
            Some(token) => queue.claim_unless(token),
            None => queue.claim(),
        };
        while let Some(range) = claim() {
            let mut set = CliqueSet::new();
            for &v in &order[range.clone()] {
                top_level_subproblem(g, v, rank, kernel, scratch, &mut set);
            }
            local.push((range.start, set));
        }
        chunks.lock().expect("clique worker panicked").extend(local);
    });
    if let Some(token) = cancel {
        token.check()?;
    }

    let mut chunks = chunks.into_inner().expect("clique worker panicked");
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let total: usize = chunks.iter().map(|(_, s)| s.total_members()).sum();
    let count: usize = chunks.iter().map(|(_, s)| s.len()).sum();
    let mut out = CliqueSet::with_capacity(count, total);
    for (_, set) in &chunks {
        out.merge(set);
    }
    Ok(out)
}

/// Buffered batches the [`OrderedAbsorber`] may hold before producers
/// stall.
///
/// Bounds the fused pipeline's reassembly memory to a constant number of
/// in-flight chunks (each the cliques of [`STEAL_CHUNK`] outer
/// vertices): a producer whose chunk is not the next one due pauses
/// once this many finished chunks are waiting. The producer holding the
/// next-due chunk never pauses, so the stream always advances.
const REASSEMBLY_WINDOW: usize = 32;

/// One work-stolen chunk of enumerated cliques in flat form: clique `i`
/// is `members[lens[..i].sum()..][..lens[i]]`, members sorted ascending.
struct Batch {
    lens: Vec<u32>,
    members: Vec<NodeId>,
}

/// Streams the maximal cliques of `g` into `consumer` using `threads`
/// workers — the sink-driven counterpart of [`max_cliques_parallel`],
/// with no [`CliqueSet`] materialised anywhere.
///
/// The consumer sees the *sequential* stream — same cliques, same
/// order, members sorted ascending — at every worker count: workers
/// claim work-stolen chunks, enumerate them into flat batches, and hand
/// them to an [`OrderedAbsorber`] that feeds the consumer in ascending
/// chunk order, pausing producers that run too far ahead so at most a
/// constant number of chunks is ever buffered.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn consume_max_cliques_parallel(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
    consumer: &mut (dyn CliqueConsumer + Send),
) {
    consume_max_cliques_parallel_impl(g, threads.into(), kernel, None, consumer)
        .expect("uncancellable enumeration cannot be cancelled");
}

/// [`consume_max_cliques_parallel`] polling a [`CancelToken`] between
/// emitted chunks: producers stop claiming work, the leader stops
/// consuming, paused producers are released, and everyone runs out
/// through the job protocol so the pool stays reusable.
///
/// # Errors
///
/// Returns [`Cancelled`] once the token trips. The consumer has then
/// seen a prefix of the deterministic sequential stream (cut at a chunk
/// boundary); callers that cannot resume from a prefix should discard
/// the consumer's state.
///
/// # Panics
///
/// Panics if `threads` is a fixed count of 0.
pub fn consume_max_cliques_parallel_cancellable(
    g: &Graph,
    threads: impl Into<Threads>,
    kernel: Kernel,
    cancel: &CancelToken,
    consumer: &mut (dyn CliqueConsumer + Send),
) -> Result<(), Cancelled> {
    consume_max_cliques_parallel_impl(g, threads.into(), kernel, Some(cancel), consumer)
}

fn consume_max_cliques_parallel_impl(
    g: &Graph,
    threads: Threads,
    kernel: Kernel,
    cancel: Option<&CancelToken>,
    consumer: &mut (dyn CliqueConsumer + Send),
) -> Result<(), Cancelled> {
    let mut workers = threads.resolve(g.edge_count(), AUTO_EDGES_PER_WORKER);
    if g.node_count() < 2 * workers {
        workers = 1;
    }
    let ordering = asgraph::ordering::degeneracy_order(g);
    let order = ordering.order.as_slice();
    let rank = ordering.rank.as_slice();
    let pool = Pool::global();

    if workers == 1 {
        return pool.leader(|mut w| {
            let scratch = w.scratch_with(BitsetScratch::default);
            let mut sorted: Vec<NodeId> = Vec::new();
            // Same cancellation granularity as the parallel path: one
            // poll per STEAL_CHUNK outer vertices.
            for chunk in order.chunks(STEAL_CHUNK) {
                if let Some(token) = cancel {
                    token.check()?;
                }
                for &v in chunk {
                    let _ = top_level_visit_with(g, v, rank, kernel, scratch, &mut |clique| {
                        sorted_into(clique, &mut sorted);
                        consumer.consume(&sorted);
                        ControlFlow::Continue(())
                    });
                }
            }
            Ok(())
        });
    }

    // Every worker — the calling thread included — produces: claim a
    // work-stolen chunk, enumerate it into a flat batch, hand the batch
    // to the absorber. The absorber feeds the consumer in ascending
    // chunk order (whichever worker submits the next-due chunk pays the
    // consume cost, so there is no dedicated consumer thread idling
    // between batches), and its bounded window pauses producers that
    // run too far ahead. The consumer sees the sequential stream
    // whatever the scheduling races did.
    let queue = ChunkQueue::new(order.len(), STEAL_CHUNK);
    let absorber = OrderedAbsorber::new(REASSEMBLY_WINDOW, consumer);
    pool.run(workers, |mut w| {
        let scratch = w.scratch_with(BitsetScratch::default);
        let mut sorted: Vec<NodeId> = Vec::new();
        let claim = || match cancel {
            Some(token) => queue.claim_unless(token),
            None => queue.claim(),
        };
        while let Some(range) = claim() {
            let mut batch = Batch {
                lens: Vec::new(),
                members: Vec::new(),
            };
            for &v in &order[range.clone()] {
                let _ = top_level_visit_with(g, v, rank, kernel, scratch, &mut |clique| {
                    sorted_into(clique, &mut sorted);
                    batch.lens.push(sorted.len() as u32);
                    batch.members.extend_from_slice(&sorted);
                    ControlFlow::Continue(())
                });
            }
            absorber.submit(range.start / STEAL_CHUNK, batch, |consumer, batch| {
                let mut offset = 0usize;
                for &len in &batch.lens {
                    consumer.consume(&batch.members[offset..offset + len as usize]);
                    offset += len as usize;
                }
            });
        }
    });
    if let Some(token) = cancel {
        token.check()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bron_kerbosch::{degeneracy, degeneracy_with};

    fn canonical(mut s: CliqueSet) -> CliqueSet {
        s.sort_canonical();
        s
    }

    #[test]
    fn matches_sequential_on_small_graph() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        );
        let seq = canonical(degeneracy(&g));
        for threads in 1..=4 {
            let par = canonical(max_cliques_parallel(&g, threads));
            assert_eq!(seq, par, "thread count {threads}");
        }
    }

    #[test]
    fn work_stealing_preserves_sequential_order() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 120u32;
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.1) {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        // Not just the same set: the exact same enumeration order, for
        // every kernel and thread count.
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let seq = degeneracy_with(&g, kernel);
            for threads in [2, 3, 4, 7] {
                let par = max_cliques_parallel_with(&g, threads, kernel);
                assert_eq!(seq, par, "kernel {kernel}, threads {threads}");
            }
        }
    }

    #[test]
    fn auto_threads_match_sequential() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let n = 80u32;
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.12) {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let seq = degeneracy(&g);
        let auto = max_cliques_parallel(&g, Threads::Auto);
        assert_eq!(seq, auto);
    }

    #[test]
    fn matches_sequential_on_random_graph() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 60u32;
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.15) {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let seq = canonical(degeneracy(&g));
        let par = canonical(max_cliques_parallel(&g, 4));
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let g = Graph::complete(3);
        let _ = max_cliques_parallel(&g, 0);
    }

    #[test]
    fn live_token_changes_nothing() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let token = exec::CancelToken::new();
        for threads in 1..=4 {
            let got = max_cliques_parallel_cancellable(&g, threads, Kernel::Auto, &token)
                .expect("token never trips");
            assert_eq!(got, degeneracy(&g), "threads {threads}");
        }
    }

    #[test]
    fn tripped_token_cancels_at_every_worker_count() {
        let g = Graph::complete(8);
        let token = exec::CancelToken::new();
        token.cancel();
        for threads in 1..=4 {
            let err = max_cliques_parallel_cancellable(&g, threads, Kernel::Auto, &token);
            assert!(err.is_err(), "threads {threads}");
        }
        // And the pool is still usable after the cancelled runs.
        assert_eq!(max_cliques_parallel(&g, 4).len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert!(max_cliques_parallel(&g, 3).is_empty());
    }

    /// Recording consumer for the sink-driver tests.
    #[derive(Default)]
    struct Record(Vec<Vec<NodeId>>);

    impl CliqueConsumer for Record {
        fn consume(&mut self, clique: &[NodeId]) {
            assert!(clique.windows(2).all(|w| w[0] < w[1]), "unsorted emit");
            self.0.push(clique.to_vec());
        }
    }

    fn random_graph(seed: u64, n: u32, p: f64) -> Graph {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(p) {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn sink_driver_streams_sequential_order_at_every_worker_count() {
        let g = random_graph(11, 120, 0.1);
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let seq: Vec<Vec<NodeId>> = degeneracy_with(&g, kernel)
                .iter()
                .map(<[NodeId]>::to_vec)
                .collect();
            for threads in [1, 2, 3, 4, 7] {
                let mut sink = Record::default();
                consume_max_cliques_parallel(&g, threads, kernel, &mut sink);
                assert_eq!(seq, sink.0, "kernel {kernel}, threads {threads}");
            }
        }
    }

    #[test]
    fn sink_driver_tripped_token_cancels_and_pool_stays_reusable() {
        let g = random_graph(17, 100, 0.15);
        let token = exec::CancelToken::new();
        token.cancel();
        for threads in 1..=4 {
            let mut sink = Record::default();
            let err = consume_max_cliques_parallel_cancellable(
                &g,
                threads,
                Kernel::Auto,
                &token,
                &mut sink,
            );
            assert!(err.is_err(), "threads {threads}");
            assert!(sink.0.is_empty(), "threads {threads}");
        }
        // The pool runs out through the job protocol and stays both
        // reusable and resumable: a fresh token completes the stream.
        let fresh = exec::CancelToken::new();
        let mut sink = Record::default();
        consume_max_cliques_parallel_cancellable(&g, 4, Kernel::Auto, &fresh, &mut sink)
            .expect("fresh token never trips");
        assert_eq!(sink.0.len(), degeneracy(&g).len());
    }
}
