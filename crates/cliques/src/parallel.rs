//! Multi-threaded maximal-clique enumeration.
//!
//! The clique-enumeration half of the "Lightweight Parallel Clique
//! Percolation Method" (Gregori, Lenzini, Mainardi, Orsini): the
//! degeneracy-ordered outer loop of Bron–Kerbosch is embarrassingly
//! parallel — each outer vertex spawns an independent subproblem — so we
//! deal outer vertices to worker threads round-robin (which also balances
//! load, since consecutive vertices in degeneracy order tend to have
//! similar subproblem sizes) and merge thread-local [`CliqueSet`]s at the
//! end.

use crate::bron_kerbosch::top_level_subproblem;
use crate::clique_set::CliqueSet;
use asgraph::Graph;

/// Enumerates all maximal cliques of `g` using `threads` worker threads.
///
/// Output is identical (up to order) to
/// [`degeneracy`](crate::bron_kerbosch::degeneracy); results are merged in
/// worker order so the result is deterministic for a fixed thread count.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cliques::parallel::max_cliques_parallel;
///
/// let g = Graph::complete(6);
/// let cliques = max_cliques_parallel(&g, 4);
/// assert_eq!(cliques.len(), 1);
/// ```
pub fn max_cliques_parallel(g: &Graph, threads: usize) -> CliqueSet {
    assert!(threads > 0, "need at least one thread");
    let ordering = asgraph::ordering::degeneracy_order(g);
    if threads == 1 || g.node_count() < 2 * threads {
        let mut out = CliqueSet::new();
        for &v in &ordering.order {
            top_level_subproblem(g, v, &ordering.rank, &mut out);
        }
        return out;
    }

    let rank = &ordering.rank;
    let order = &ordering.order;
    let mut partials: Vec<CliqueSet> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut local = CliqueSet::new();
                let mut i = t;
                while i < order.len() {
                    top_level_subproblem(g, order[i], rank, &mut local);
                    i += threads;
                }
                local
            }));
        }
        for h in handles {
            partials.push(h.join().expect("clique worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let total: usize = partials.iter().map(CliqueSet::total_members).sum();
    let count: usize = partials.iter().map(CliqueSet::len).sum();
    let mut out = CliqueSet::with_capacity(count, total);
    for p in &partials {
        out.merge(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bron_kerbosch::degeneracy;

    fn canonical(mut s: CliqueSet) -> CliqueSet {
        s.sort_canonical();
        s
    }

    #[test]
    fn matches_sequential_on_small_graph() {
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        );
        let seq = canonical(degeneracy(&g));
        for threads in 1..=4 {
            let par = canonical(max_cliques_parallel(&g, threads));
            assert_eq!(seq, par, "thread count {threads}");
        }
    }

    #[test]
    fn matches_sequential_on_random_graph() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 60u32;
        let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.random_bool(0.15) {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let seq = canonical(degeneracy(&g));
        let par = canonical(max_cliques_parallel(&g, 4));
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let g = Graph::complete(3);
        let _ = max_cliques_parallel(&g, 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert!(max_cliques_parallel(&g, 3).is_empty());
    }
}
