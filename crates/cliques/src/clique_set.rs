//! Result container for clique enumeration.

use asgraph::NodeId;
use std::collections::BTreeMap;

/// A single clique: a sorted, duplicate-free list of node ids.
pub type Clique = Vec<NodeId>;

/// A collection of cliques in a flat arena (offsets + members), avoiding
/// one allocation per clique for multi-million-clique runs.
///
/// Cliques are stored with sorted members. Iteration order is insertion
/// order; [`CliqueSet::sort_canonical`] produces a deterministic order for
/// comparisons across algorithms.
///
/// # Example
///
/// ```
/// use cliques::CliqueSet;
///
/// let mut set = CliqueSet::new();
/// set.push(&[2, 0, 1]);
/// set.push(&[3, 4]);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.get(0), &[0, 1, 2]); // members are sorted
/// assert_eq!(set.max_size(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliqueSet {
    offsets: Vec<usize>,
    members: Vec<NodeId>,
}

impl CliqueSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CliqueSet {
            offsets: vec![0],
            members: Vec::new(),
        }
    }

    /// Creates an empty set with room for roughly `cliques` cliques of
    /// `total_members` members overall.
    pub fn with_capacity(cliques: usize, total_members: usize) -> Self {
        let mut offsets = Vec::with_capacity(cliques + 1);
        offsets.push(0);
        CliqueSet {
            offsets,
            members: Vec::with_capacity(total_members),
        }
    }

    /// Appends a clique. Members are copied and sorted; duplicates within a
    /// single clique are deduplicated.
    pub fn push(&mut self, clique: &[NodeId]) {
        let start = self.members.len();
        self.members.extend_from_slice(clique);
        self.members[start..].sort_unstable();
        // Dedup in place within the new tail.
        let mut write = start;
        for read in start..self.members.len() {
            if read == start || self.members[read] != self.members[write - 1] {
                self.members[write] = self.members[read];
                write += 1;
            }
        }
        self.members.truncate(write);
        self.offsets.push(self.members.len());
    }

    /// Number of cliques.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the set holds no cliques.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th clique (sorted members).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[NodeId] {
        &self.members[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Size of the `i`-th clique.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn size(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Iterates over cliques as sorted member slices.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, i: 0 }
    }

    /// Size of the largest clique (0 when empty).
    pub fn max_size(&self) -> usize {
        (0..self.len()).map(|i| self.size(i)).max().unwrap_or(0)
    }

    /// Total members across all cliques (with multiplicity).
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Histogram of clique sizes as sorted `(size, count)` pairs.
    ///
    /// This is the census behind the paper's §3 remark that 88 % of the
    /// 2.7 M maximal cliques fall in the `[18:28]` size band.
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..self.len() {
            *hist.entry(self.size(i)).or_insert(0) += 1;
        }
        hist.into_iter().collect()
    }

    /// Fraction of cliques whose size lies in `[lo, hi]` (inclusive).
    /// Returns 0.0 for an empty set.
    pub fn fraction_in_band(&self, lo: usize, hi: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let in_band = (0..self.len())
            .filter(|&i| (lo..=hi).contains(&self.size(i)))
            .count();
        in_band as f64 / self.len() as f64
    }

    /// Sorts cliques into a canonical (lexicographic) order, for
    /// deterministic comparison of enumeration algorithms.
    pub fn sort_canonical(&mut self) {
        let mut cliques: Vec<Clique> = self.iter().map(<[NodeId]>::to_vec).collect();
        cliques.sort_unstable();
        let mut fresh = CliqueSet::with_capacity(cliques.len(), self.members.len());
        for c in &cliques {
            fresh.push(c);
        }
        *self = fresh;
    }

    /// The single canonicalisation entry point of the percolation
    /// pipelines: sorts into canonical order and (in debug builds)
    /// asserts the result is *strictly* increasing — i.e. the enumerator
    /// delivered no duplicate maximal clique. Every percolation front-end
    /// (sequential, parallel, precomputed cliques) funnels through this
    /// so community indices never depend on enumeration order.
    pub fn canonicalize(&mut self) {
        self.sort_canonical();
        debug_assert!(
            (1..self.len()).all(|i| self.get(i - 1) < self.get(i)),
            "canonical clique order must be strictly increasing (duplicate clique in set)"
        );
    }

    /// Merges another set into this one (cliques appended).
    pub fn merge(&mut self, other: &CliqueSet) {
        for c in other.iter() {
            self.push(c);
        }
    }
}

impl<'a> IntoIterator for &'a CliqueSet {
    type Item = &'a [NodeId];
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Clique> for CliqueSet {
    fn from_iter<I: IntoIterator<Item = Clique>>(iter: I) -> Self {
        let mut set = CliqueSet::new();
        for c in iter {
            set.push(&c);
        }
        set
    }
}

impl Extend<Clique> for CliqueSet {
    fn extend<I: IntoIterator<Item = Clique>>(&mut self, iter: I) {
        for c in iter {
            self.push(&c);
        }
    }
}

/// Iterator over the cliques of a [`CliqueSet`], produced by
/// [`CliqueSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a CliqueSet,
    i: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a [NodeId];

    fn next(&mut self) -> Option<Self::Item> {
        if self.i < self.set.len() {
            let c = self.set.get(self.i);
            self.i += 1;
            Some(c)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.set.len() - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sorts_and_dedups() {
        let mut s = CliqueSet::new();
        s.push(&[5, 1, 3, 1]);
        assert_eq!(s.get(0), &[1, 3, 5]);
        assert_eq!(s.size(0), 3);
    }

    #[test]
    fn histogram_and_band() {
        let mut s = CliqueSet::new();
        s.push(&[0, 1]);
        s.push(&[2, 3]);
        s.push(&[0, 1, 2]);
        assert_eq!(s.size_histogram(), vec![(2, 2), (3, 1)]);
        assert!((s.fraction_in_band(2, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.fraction_in_band(4, 9), 0.0);
    }

    #[test]
    fn empty_set() {
        let s = CliqueSet::new();
        assert!(s.is_empty());
        assert_eq!(s.max_size(), 0);
        assert_eq!(s.fraction_in_band(1, 10), 0.0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn canonical_sort_is_deterministic() {
        let mut a = CliqueSet::new();
        a.push(&[3, 4]);
        a.push(&[0, 1]);
        let mut b = CliqueSet::new();
        b.push(&[0, 1]);
        b.push(&[3, 4]);
        a.sort_canonical();
        b.sort_canonical();
        assert_eq!(a, b);
    }

    #[test]
    fn from_and_extend() {
        let mut s: CliqueSet = vec![vec![0, 1], vec![2, 3]].into_iter().collect();
        s.extend(vec![vec![4, 5, 6]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_members(), 7);
    }

    #[test]
    fn merge_appends() {
        let mut a: CliqueSet = vec![vec![0, 1]].into_iter().collect();
        let b: CliqueSet = vec![vec![2, 3]].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn exact_size_iterator() {
        let s: CliqueSet = vec![vec![0], vec![1], vec![2]].into_iter().collect();
        let it = s.iter();
        assert_eq!(it.len(), 3);
    }
}
