//! Sink-driven clique enumeration: cliques flow straight into a
//! consumer as Bron–Kerbosch emits them.
//!
//! The staged pipeline materialises every maximal clique into a
//! [`CliqueSet`](crate::CliqueSet) before percolation looks at the
//! first one — two passes over the same data with the full clique
//! census resident in between. The sink API inverts that: the
//! enumerator pushes each clique into a [`CliqueConsumer`] the moment
//! it exists, so a downstream engine (the fused percolator in `cpm`,
//! the clique-log writer in `cpm-stream`) can fold it into its own
//! state and let the members go.
//!
//! The drivers guarantee the *sequential enumeration contract*: every
//! maximal clique exactly once, members sorted strictly ascending, in
//! the order the sequential degeneracy enumeration produces — for every
//! kernel, thread count, and scheduling race. The parallel driver
//! ([`crate::parallel::consume_max_cliques_parallel`]) keeps the
//! contract by reassembling work-stolen chunks in chunk order before
//! the consumer sees them.

use crate::kernel::Kernel;
use asgraph::{Graph, NodeId};
use std::ops::ControlFlow;

/// A sink for a stream of maximal cliques.
///
/// [`consume`](Self::consume) is called once per maximal clique, with
/// the members sorted strictly ascending; the slice is only valid for
/// the duration of the call. Drivers deliver the cliques in the
/// sequential enumeration order, so a consumer may rely on the stream
/// being deterministic and exactly-once (the same contract as
/// `cpm_stream`'s `CliqueSource::replay`).
pub trait CliqueConsumer {
    /// Folds one maximal clique into the consumer's state.
    fn consume(&mut self, clique: &[NodeId]);
}

impl<F: FnMut(&[NodeId])> CliqueConsumer for F {
    fn consume(&mut self, clique: &[NodeId]) {
        self(clique);
    }
}

/// Enumerates the maximal cliques of `g` straight into `consumer`,
/// without materialising a clique set.
///
/// The stream (contents and order) is identical to
/// [`crate::max_cliques_with`] for every kernel; only the peak memory
/// differs — the recursion stack plus one sort scratch.
pub fn consume_max_cliques(g: &Graph, kernel: Kernel, consumer: &mut dyn CliqueConsumer) {
    let mut scratch: Vec<NodeId> = Vec::new();
    let _ = crate::for_each_max_clique_with(g, kernel, |clique| {
        sorted_into(clique, &mut scratch);
        consumer.consume(&scratch);
        ControlFlow::Continue(())
    });
}

/// [`consume_max_cliques`] polling a [`exec::CancelToken`] between
/// emitted cliques (at every top-level subproblem boundary, exactly
/// like [`crate::for_each_max_clique_cancellable`]).
///
/// # Errors
///
/// Returns [`exec::Cancelled`] once the token trips. The consumer has
/// then seen a prefix of the deterministic stream; callers that cannot
/// resume from a prefix should discard it.
pub fn consume_max_cliques_cancellable(
    g: &Graph,
    kernel: Kernel,
    cancel: &exec::CancelToken,
    consumer: &mut dyn CliqueConsumer,
) -> Result<(), exec::Cancelled> {
    let mut scratch: Vec<NodeId> = Vec::new();
    crate::for_each_max_clique_cancellable(g, kernel, cancel, |clique| {
        sorted_into(clique, &mut scratch);
        consumer.consume(&scratch);
        ControlFlow::Continue(())
    })
}

/// Copies `clique` into `scratch` sorted ascending. The enumerator
/// emits members in recursion order (pivot first), not sorted; every
/// consumer-facing surface promises ascending members, so the sort
/// happens once, here.
pub(crate) fn sorted_into(clique: &[NodeId], scratch: &mut Vec<NodeId>) {
    scratch.clear();
    scratch.extend_from_slice(clique);
    scratch.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Graph {
        Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        )
    }

    /// Collects the stream for comparison against the staged set.
    struct Collect(Vec<Vec<NodeId>>);

    impl CliqueConsumer for Collect {
        fn consume(&mut self, clique: &[NodeId]) {
            assert!(clique.windows(2).all(|w| w[0] < w[1]), "unsorted emit");
            self.0.push(clique.to_vec());
        }
    }

    #[test]
    fn sink_stream_matches_staged_set_per_kernel() {
        let g = fixture();
        for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
            let staged: Vec<Vec<NodeId>> = crate::max_cliques_with(&g, kernel)
                .iter()
                .map(<[NodeId]>::to_vec)
                .collect();
            let mut sink = Collect(Vec::new());
            consume_max_cliques(&g, kernel, &mut sink);
            assert_eq!(staged, sink.0, "kernel {kernel}");
        }
    }

    #[test]
    fn closures_are_consumers() {
        let g = fixture();
        let mut count = 0usize;
        consume_max_cliques(&g, Kernel::Auto, &mut |_: &[NodeId]| count += 1);
        assert_eq!(count, crate::max_cliques(&g).len());
    }

    #[test]
    fn cancellable_with_live_token_sees_the_full_stream() {
        let g = fixture();
        let token = exec::CancelToken::new();
        let mut sink = Collect(Vec::new());
        consume_max_cliques_cancellable(&g, Kernel::Auto, &token, &mut sink)
            .expect("token never trips");
        assert_eq!(sink.0.len(), crate::max_cliques(&g).len());
    }

    #[test]
    fn tripped_token_stops_the_stream() {
        let g = fixture();
        let token = exec::CancelToken::new();
        token.cancel();
        let mut sink = Collect(Vec::new());
        let err = consume_max_cliques_cancellable(&g, Kernel::Auto, &token, &mut sink);
        assert!(err.is_err());
        assert!(sink.0.is_empty());
    }
}
