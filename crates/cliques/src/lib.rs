//! Maximal-clique enumeration for the clique percolation pipeline.
//!
//! The paper's §3 extracts all maximal k-cliques of the AS-level topology
//! (2.7 M of them, 88 % with k in `[18:28]`) as the input to the Clique
//! Percolation Method. This crate provides the corresponding machinery:
//!
//! - [`bron_kerbosch`] — the Bron–Kerbosch family: the textbook recursion,
//!   Tomita pivoting, and the Eppstein–Löffler–Strash degeneracy-ordered
//!   outer loop (the practical default for sparse Internet-like graphs).
//! - [`parallel`] — a multi-threaded enumerator partitioning the degeneracy
//!   outer loop across the persistent [`exec::Pool`] worker team; one half
//!   of the "Lightweight Parallel CPM" of Gregori et al.
//! - [`CliqueSet`] — the result container with the size histogram used for
//!   the paper's maximal-clique census.
//! - [`kclique`] — exhaustive listing of (not necessarily maximal)
//!   k-cliques, used only by the naive definitional CPM oracle in tests.
//!
//! # Example
//!
//! ```
//! use asgraph::Graph;
//! use cliques::max_cliques;
//!
//! // Two triangles sharing the edge {1, 2}.
//! let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
//! let cliques = max_cliques(&g);
//! assert_eq!(cliques.len(), 2);
//! assert_eq!(cliques.size_histogram(), vec![(3, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bron_kerbosch;
mod clique_set;
pub mod kclique;
mod kernel;
pub mod parallel;
pub mod sink;

pub use clique_set::{Clique, CliqueSet};
pub use kernel::{Kernel, AUTO_BITSET_MAX_LOCAL};
pub use sink::{consume_max_cliques, consume_max_cliques_cancellable, CliqueConsumer};

use asgraph::{Graph, NodeId};
use std::ops::ControlFlow;

/// Enumerates all maximal cliques of `g` with the recommended algorithm
/// (degeneracy-ordered Bron–Kerbosch with Tomita pivoting) and the
/// default [`Kernel::Auto`] set kernel.
///
/// Isolated vertices count as maximal 1-cliques, matching the definition of
/// maximality (they extend no other clique).
pub fn max_cliques(g: &Graph) -> CliqueSet {
    bron_kerbosch::degeneracy(g)
}

/// [`max_cliques`] with an explicit set [`Kernel`]. Every kernel yields
/// identical cliques in identical order.
pub fn max_cliques_with(g: &Graph, kernel: Kernel) -> CliqueSet {
    bron_kerbosch::degeneracy_with(g, kernel)
}

/// Visits every maximal clique of `g` as it is found, without collecting
/// the clique set — the streaming counterpart of [`max_cliques`] and the
/// enumeration front-end of the `cpm-stream` crate.
///
/// Cliques are emitted by the same degeneracy-ordered Bron–Kerbosch
/// recursion as [`max_cliques`] (identical cliques, identical order), but
/// the only live state is the recursion stack: peak memory stays
/// proportional to the graph instead of the clique census. The visitor
/// receives each clique as a sorted member slice valid only for the
/// duration of the call, and can abort the enumeration early by
/// returning [`ControlFlow::Break`]; the function then returns `Break`
/// too.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use std::ops::ControlFlow;
///
/// let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
/// let mut sizes = Vec::new();
/// cliques::for_each_max_clique(&g, |clique| {
///     sizes.push(clique.len());
///     ControlFlow::Continue(())
/// });
/// assert_eq!(sizes, vec![3, 3]); // two triangles
///
/// // Early exit: stop at the first clique of size >= 3.
/// let mut found = None;
/// cliques::for_each_max_clique(&g, |clique| {
///     if clique.len() >= 3 {
///         found = Some(clique.to_vec());
///         ControlFlow::Break(())
///     } else {
///         ControlFlow::Continue(())
///     }
/// });
/// assert!(found.is_some());
/// ```
pub fn for_each_max_clique<F>(g: &Graph, visit: F) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    for_each_max_clique_with(g, Kernel::Auto, visit)
}

/// [`for_each_max_clique`] with an explicit set [`Kernel`]. The stream of
/// cliques (contents and order) is identical whatever the kernel.
pub fn for_each_max_clique_with<F>(g: &Graph, kernel: Kernel, mut visit: F) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let ordering = asgraph::ordering::degeneracy_order(g);
    let mut scratch = Default::default();
    for &v in &ordering.order {
        bron_kerbosch::top_level_visit_with(
            g,
            v,
            &ordering.rank,
            kernel,
            &mut scratch,
            &mut visit,
        )?;
    }
    ControlFlow::Continue(())
}

/// [`for_each_max_clique_with`] polling a [`CancelToken`] between
/// top-level subproblems — the enumeration's natural chunk boundary.
///
/// Until the token trips, the visitor sees exactly the stream of
/// [`for_each_max_clique_with`] (a prefix of it once cancelled, cut at
/// a subproblem boundary). A visitor `Break` still stops the
/// enumeration and returns `Ok(())`; cancellation returns
/// `Err(Cancelled)` so callers can tell "done early by choice" from
/// "told to stop".
///
/// # Errors
///
/// Returns [`exec::Cancelled`] once `cancel` trips; cliques emitted
/// before that were a prefix of the deterministic stream, so a caller
/// that persisted them can resume from where the stream stopped.
pub fn for_each_max_clique_cancellable<F>(
    g: &Graph,
    kernel: Kernel,
    cancel: &exec::CancelToken,
    mut visit: F,
) -> Result<(), exec::Cancelled>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let ordering = asgraph::ordering::degeneracy_order(g);
    let mut scratch = Default::default();
    for &v in &ordering.order {
        cancel.check()?;
        if bron_kerbosch::top_level_visit_with(
            g,
            v,
            &ordering.rank,
            kernel,
            &mut scratch,
            &mut visit,
        )
        .is_break()
        {
            return Ok(());
        }
    }
    Ok(())
}
