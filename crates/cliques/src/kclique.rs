//! Exhaustive listing of k-cliques (complete subgraphs of exactly `k`
//! nodes, not necessarily maximal).
//!
//! The k-clique community definition of Palla et al. operates on *all*
//! k-cliques; the fast percolation path reduces the problem to maximal
//! cliques, and this module provides the literal enumeration used by the
//! naive definitional oracle that cross-validates the reduction.
//!
//! The recursion extends a partial clique only with common neighbours of
//! larger id, so each k-clique is produced exactly once (in ascending
//! order).

use asgraph::{Graph, NodeId};

/// Lists all k-cliques of `g`, each as a sorted vector.
///
/// `k == 0` yields nothing; `k == 1` yields every node; `k == 2` yields
/// every edge.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cliques::kclique::enumerate_k_cliques;
///
/// let g = Graph::complete(4);
/// assert_eq!(enumerate_k_cliques(&g, 3).len(), 4); // C(4,3)
/// ```
pub fn enumerate_k_cliques(g: &Graph, k: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    for_each_k_clique(g, k, |c| out.push(c.to_vec()));
    out
}

/// Calls `f` once for every k-clique of `g` (sorted members), without
/// materialising the full list.
pub fn for_each_k_clique<F: FnMut(&[NodeId])>(g: &Graph, k: usize, mut f: F) {
    if k == 0 {
        return;
    }
    let mut partial: Vec<NodeId> = Vec::with_capacity(k);
    for v in g.node_ids() {
        partial.push(v);
        if k == 1 {
            f(&partial);
        } else {
            let candidates: Vec<NodeId> =
                g.neighbors(v).iter().copied().filter(|&w| w > v).collect();
            extend(g, k, &mut partial, &candidates, &mut f);
        }
        partial.pop();
    }
}

fn extend<F: FnMut(&[NodeId])>(
    g: &Graph,
    k: usize,
    partial: &mut Vec<NodeId>,
    candidates: &[NodeId],
    f: &mut F,
) {
    // Prune: not enough candidates left to reach size k.
    if partial.len() + candidates.len() < k {
        return;
    }
    for (i, &v) in candidates.iter().enumerate() {
        partial.push(v);
        if partial.len() == k {
            f(partial);
        } else {
            let nv = g.neighbors(v);
            let next: Vec<NodeId> = candidates[i + 1..]
                .iter()
                .copied()
                .filter(|w| nv.binary_search(w).is_ok())
                .collect();
            extend(g, k, partial, &next, f);
        }
        partial.pop();
    }
}

/// Counts the k-cliques of `g` without storing them.
pub fn count_k_cliques(g: &Graph, k: usize) -> usize {
    let mut n = 0usize;
    for_each_k_clique(g, k, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        for k in 0..=7 {
            assert_eq!(
                count_k_cliques(&g, k),
                if k == 0 { 0 } else { binomial(6, k) }
            );
        }
    }

    #[test]
    fn one_cliques_are_nodes_two_cliques_are_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(count_k_cliques(&g, 1), 5);
        assert_eq!(count_k_cliques(&g, 2), 3);
    }

    #[test]
    fn triangle_free_graph_has_no_3_cliques() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        assert_eq!(count_k_cliques(&g, 3), 0);
    }

    #[test]
    fn members_sorted_and_unique() {
        let g = Graph::complete(5);
        for c in enumerate_k_cliques(&g, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn each_k_clique_listed_once() {
        let g = Graph::complete(5);
        let mut cliques = enumerate_k_cliques(&g, 4);
        let before = cliques.len();
        cliques.sort();
        cliques.dedup();
        assert_eq!(cliques.len(), before);
    }

    #[test]
    fn all_outputs_are_cliques() {
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        );
        for c in enumerate_k_cliques(&g, 3) {
            for (i, &u) in c.iter().enumerate() {
                for &v in &c[i + 1..] {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }
}
