//! Exhaustive listing of k-cliques (complete subgraphs of exactly `k`
//! nodes, not necessarily maximal).
//!
//! The k-clique community definition of Palla et al. operates on *all*
//! k-cliques; the fast percolation path reduces the problem to maximal
//! cliques, and this module provides the literal enumeration used by the
//! naive definitional oracle that cross-validates the reduction.
//!
//! The recursion extends a partial clique only with common neighbours of
//! larger id, so each k-clique is produced exactly once (in ascending
//! order).

use asgraph::{Graph, NodeId};

/// Lists all k-cliques of `g`, each as a sorted vector.
///
/// `k == 0` yields nothing; `k == 1` yields every node; `k == 2` yields
/// every edge.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cliques::kclique::enumerate_k_cliques;
///
/// let g = Graph::complete(4);
/// assert_eq!(enumerate_k_cliques(&g, 3).len(), 4); // C(4,3)
/// ```
pub fn enumerate_k_cliques(g: &Graph, k: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    for_each_k_clique(g, k, |c| out.push(c.to_vec()));
    out
}

/// Calls `f` once for every k-clique of `g` (sorted members), without
/// materialising the full list.
pub fn for_each_k_clique<F: FnMut(&[NodeId])>(g: &Graph, k: usize, mut f: F) {
    if k == 0 {
        return;
    }
    let mut partial: Vec<NodeId> = Vec::with_capacity(k);
    for v in g.node_ids() {
        partial.push(v);
        if k == 1 {
            f(&partial);
        } else {
            let candidates: Vec<NodeId> =
                g.neighbors(v).iter().copied().filter(|&w| w > v).collect();
            extend(g, k, &mut partial, &candidates, &mut f);
        }
        partial.pop();
    }
}

fn extend<F: FnMut(&[NodeId])>(
    g: &Graph,
    k: usize,
    partial: &mut Vec<NodeId>,
    candidates: &[NodeId],
    f: &mut F,
) {
    // Prune: not enough candidates left to reach size k.
    if partial.len() + candidates.len() < k {
        return;
    }
    for (i, &v) in candidates.iter().enumerate() {
        partial.push(v);
        if partial.len() == k {
            f(partial);
        } else {
            let nv = g.neighbors(v);
            let next: Vec<NodeId> = candidates[i + 1..]
                .iter()
                .copied()
                .filter(|w| nv.binary_search(w).is_ok())
                .collect();
            extend(g, k, partial, &next, f);
        }
        partial.pop();
    }
}

/// Counts the k-cliques of `g` without storing them.
pub fn count_k_cliques(g: &Graph, k: usize) -> usize {
    let mut n = 0usize;
    for_each_k_clique(g, k, |_| n += 1);
    n
}

/// `n choose k`, saturating at `u64::MAX`.
///
/// Used to decide whether a clique's full k-clique decomposition is
/// affordable before enumerating it (see [`for_each_sub_clique`]).
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u64 = 1;
    for i in 0..k {
        // r * (n - i) / (i + 1) stays integral at every step because r
        // is C(n, i) * something divisible — compute with checked mul.
        match r.checked_mul((n - i) as u64) {
            Some(v) => r = v / (i as u64 + 1),
            None => return u64::MAX,
        }
    }
    r
}

/// The k-clique decomposition visitor: calls `f` once for every
/// k-subset of `members` in lexicographic order.
///
/// A clique's k-subsets *are* its k-cliques — every subset of a
/// complete subgraph is complete — so this decomposes a (maximal)
/// clique into the k-cliques the Palla definition operates on, without
/// touching the graph. `members` is expected sorted; the subsets then
/// come out sorted too.
///
/// The count is `C(|members|, k)` ([`binomial`]): callers gate on it
/// before asking for an exhaustive decomposition of a large clique.
///
/// # Example
///
/// ```
/// use cliques::kclique::for_each_sub_clique;
///
/// let mut subs = Vec::new();
/// for_each_sub_clique(&[1, 4, 7], 2, |s| subs.push(s.to_vec()));
/// assert_eq!(subs, vec![vec![1, 4], vec![1, 7], vec![4, 7]]);
/// ```
pub fn for_each_sub_clique<F: FnMut(&[NodeId])>(members: &[NodeId], k: usize, mut f: F) {
    let s = members.len();
    if k == 0 || k > s {
        return;
    }
    // Classic lexicographic combination walk over member positions.
    let mut pos: Vec<usize> = (0..k).collect();
    let mut subset: Vec<NodeId> = pos.iter().map(|&p| members[p]).collect();
    loop {
        f(&subset);
        // Advance: find the rightmost position that can still move.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if pos[i] != i + s - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        pos[i] += 1;
        subset[i] = members[pos[i]];
        for j in i + 1..k {
            pos[j] = pos[j - 1] + 1;
            subset[j] = members[pos[j]];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        for k in 0..=7 {
            assert_eq!(
                count_k_cliques(&g, k),
                if k == 0 { 0 } else { binomial(6, k) as usize }
            );
        }
    }

    #[test]
    fn binomial_values_and_saturation() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(29, 14), 77_558_760);
        assert_eq!(binomial(200, 100), u64::MAX); // saturates
    }

    #[test]
    fn sub_clique_visitor_enumerates_every_subset_once() {
        let members: Vec<NodeId> = vec![0, 3, 5, 9, 12];
        for k in 1..=5 {
            let mut subs = Vec::new();
            for_each_sub_clique(&members, k, |s| subs.push(s.to_vec()));
            assert_eq!(subs.len(), binomial(5, k) as usize, "k = {k}");
            let mut dedup = subs.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), subs.len(), "k = {k}: duplicates");
            assert_eq!(dedup, subs, "k = {k}: lexicographic order");
            for s in &subs {
                assert!(s.windows(2).all(|w| w[0] < w[1]));
                assert!(s.iter().all(|v| members.contains(v)));
            }
        }
    }

    #[test]
    fn sub_clique_visitor_edge_cases() {
        let mut n = 0;
        for_each_sub_clique(&[1, 2], 0, |_| n += 1);
        for_each_sub_clique(&[1, 2], 3, |_| n += 1);
        for_each_sub_clique(&[], 1, |_| n += 1);
        assert_eq!(n, 0);
        for_each_sub_clique(&[4], 1, |s| {
            assert_eq!(s, &[4]);
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn one_cliques_are_nodes_two_cliques_are_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(count_k_cliques(&g, 1), 5);
        assert_eq!(count_k_cliques(&g, 2), 3);
    }

    #[test]
    fn triangle_free_graph_has_no_3_cliques() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        assert_eq!(count_k_cliques(&g, 3), 0);
    }

    #[test]
    fn members_sorted_and_unique() {
        let g = Graph::complete(5);
        for c in enumerate_k_cliques(&g, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn each_k_clique_listed_once() {
        let g = Graph::complete(5);
        let mut cliques = enumerate_k_cliques(&g, 4);
        let before = cliques.len();
        cliques.sort();
        cliques.dedup();
        assert_eq!(cliques.len(), before);
    }

    #[test]
    fn all_outputs_are_cliques() {
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        );
        for c in enumerate_k_cliques(&g, 3) {
            for (i, &u) in c.iter().enumerate() {
                for &v in &c[i + 1..] {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }
}
