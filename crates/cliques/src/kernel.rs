//! Set kernels for the pivoted Bron–Kerbosch recursion.
//!
//! The merge kernel (the original implementation in [`crate::bron_kerbosch`])
//! represents `P`, `X`, and neighbour lists as sorted `Vec<NodeId>` and
//! intersects them with branchy linear merges. This module adds the
//! **bitset kernel**: each top-level degeneracy subproblem remaps its local
//! vertex set (the neighbours of the outer vertex, at most
//! degree-of-`v` ≤ n vertices, typically ≤ degeneracy+1 on the `P` side)
//! to dense indices `0..m`, builds the local adjacency as `m` rows of
//! `⌈m/64⌉` machine words, and runs the whole recursion with word-wise
//! `AND` + `popcount`:
//!
//! - `P ∩ N(v)` and `X ∩ N(v)` are `w`-word `AND`s,
//! - pivot selection is a popcount scan over `P ∪ X`,
//! - `P \ N(pivot)` is `AND NOT`,
//! - moving a vertex from `P` to `X` is two bit flips.
//!
//! The recursion tree, pivot tie-breaking, and therefore the emission
//! order of cliques are *identical* to the merge kernel's: local indices
//! are assigned in ascending global-id order and the pivot scan replicates
//! `Iterator::max_by_key`'s last-max-wins rule, so the two kernels are
//! interchangeable bit for bit (property-tested in `tests/properties.rs`).
//!
//! [`Kernel`] selects between them; `Auto` picks the bitset kernel
//! whenever the local subproblem fits [`AUTO_BITSET_MAX_LOCAL`] vertices
//! (beyond that the `m × ⌈m/64⌉`-word adjacency build dominates and the
//! merge kernel's output-sensitive cost wins).

use asgraph::{Graph, NodeId};
use std::fmt;
use std::ops::ControlFlow;
use std::str::FromStr;

/// Which set representation the clique enumeration hot path uses.
///
/// Parsed from the CLI `--kernel` flag (`auto | bitset | merge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Per-subproblem choice: bitset when the local vertex set fits
    /// [`AUTO_BITSET_MAX_LOCAL`], merge otherwise. The right default.
    #[default]
    Auto,
    /// Always the bitmap + popcount kernel.
    Bitset,
    /// Always the sorted-vector linear-merge kernel.
    Merge,
}

/// `Auto` uses the bitset kernel for subproblems with at most this many
/// local vertices. At the cap the local adjacency occupies
/// `4096 × 64 × 8 = 2 MiB` per enumerating thread — comfortably
/// cache-resident rows while covering every realistic AS-topology hub;
/// beyond it the O(m²/64)-word row build stops paying for itself on the
/// sparse tails.
pub const AUTO_BITSET_MAX_LOCAL: usize = 4096;

impl Kernel {
    /// Whether a subproblem whose local vertex set has `local` vertices
    /// should run on the bitset kernel.
    #[inline]
    #[must_use]
    pub fn use_bitset(self, local: usize) -> bool {
        match self {
            Kernel::Bitset => true,
            Kernel::Merge => false,
            Kernel::Auto => local <= AUTO_BITSET_MAX_LOCAL,
        }
    }
}

impl FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Kernel::Auto),
            "bitset" => Ok(Kernel::Bitset),
            "merge" => Ok(Kernel::Merge),
            other => Err(format!(
                "unknown kernel {other:?} (expected auto | bitset | merge)"
            )),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Auto => "auto",
            Kernel::Bitset => "bitset",
            Kernel::Merge => "merge",
        })
    }
}

const NONE: u32 = u32::MAX;

/// Reusable buffers for the bitset kernel: one per enumerating thread.
///
/// Holds the global→local remap table (graph-sized, lazily grown, reset
/// to a clean state after every subproblem), the local adjacency rows,
/// and a free pool of `P`/`X` word vectors so the recursion allocates
/// nothing in the steady state.
#[derive(Debug, Default)]
pub(crate) struct BitsetScratch {
    /// `local_of[g]` is the local index of global vertex `g` inside the
    /// current subproblem, or `NONE`.
    local_of: Vec<u32>,
    /// Local adjacency: row `a` is `rows[a*w..(a+1)*w]`.
    rows: Vec<u64>,
    /// Free list of `w`-word bitmap buffers.
    pool: Vec<Vec<u64>>,
}

fn pool_take(pool: &mut Vec<Vec<u64>>, w: usize) -> Vec<u64> {
    let mut v = pool.pop().unwrap_or_default();
    v.clear();
    v.resize(w, 0);
    v
}

/// The top-level degeneracy subproblem for outer vertex `v`, run on the
/// bitset kernel. Emits exactly the cliques, in exactly the order, of the
/// merge kernel's [`crate::bron_kerbosch::top_level_visit`].
pub(crate) fn top_level_visit_bitset<F>(
    g: &Graph,
    v: NodeId,
    rank: &[u32],
    scratch: &mut BitsetScratch,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let locals = g.neighbors(v);
    let m = locals.len();
    if m == 0 {
        // Isolated vertex: a maximal 1-clique.
        return visit(&[v]);
    }
    let w = m.div_ceil(64);

    if scratch.local_of.len() < g.node_count() {
        scratch.local_of.resize(g.node_count(), NONE);
    }
    for (a, &u) in locals.iter().enumerate() {
        scratch.local_of[u as usize] = a as u32;
    }

    // Local adjacency rows: probe each neighbour list through the remap
    // table, Σ deg(u) over the local set — the same order of work as one
    // level of merge intersections, paid once.
    let mut rows = std::mem::take(&mut scratch.rows);
    rows.clear();
    rows.resize(m * w, 0);
    for (a, &u) in locals.iter().enumerate() {
        let row = &mut rows[a * w..(a + 1) * w];
        for &nb in g.neighbors(u) {
            let b = scratch.local_of[nb as usize];
            if b != NONE {
                row[(b >> 6) as usize] |= 1u64 << (b & 63);
            }
        }
    }

    // P = later neighbours in degeneracy order, X = earlier. Ascending
    // local index == ascending global id, mirroring the sorted vectors of
    // the merge kernel.
    let mut p = pool_take(&mut scratch.pool, w);
    let mut x = pool_take(&mut scratch.pool, w);
    let rv = rank[v as usize];
    for (a, &u) in locals.iter().enumerate() {
        let target = if rank[u as usize] > rv {
            &mut p
        } else {
            &mut x
        };
        target[a >> 6] |= 1u64 << (a & 63);
    }

    let mut r = vec![v];
    let flow = bitset_rec(
        w,
        &rows,
        &mut p,
        &mut x,
        &mut r,
        locals,
        &mut scratch.pool,
        visit,
    );

    // Restore scratch invariants (also on early Break).
    for &u in locals {
        scratch.local_of[u as usize] = NONE;
    }
    scratch.pool.push(p);
    scratch.pool.push(x);
    scratch.rows = rows;
    flow
}

/// The pivoted recursion on word bitmaps. `rows` is the local adjacency
/// (`m` rows of `w` words), `locals` maps local index → global id.
#[allow(clippy::too_many_arguments)]
fn bitset_rec<F>(
    w: usize,
    rows: &[u64],
    p: &mut [u64],
    x: &mut [u64],
    r: &mut Vec<NodeId>,
    locals: &[NodeId],
    pool: &mut Vec<Vec<u64>>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if p.iter().all(|&wd| wd == 0) {
        if x.iter().all(|&wd| wd == 0) {
            return visit(r);
        }
        return ControlFlow::Continue(());
    }

    // Pivot u ∈ P ∪ X maximising |P ∩ N(u)|, scanning P then X in
    // ascending index order with >= so the *last* maximiser wins —
    // the exact tie-break of the merge kernel's max_by_key.
    let mut best: i64 = -1;
    let mut pivot = 0usize;
    for src in [&*p, &*x] {
        for (wi, &word) in src.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let u = (wi << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let row = &rows[u * w..(u + 1) * w];
                let cnt: i64 = row
                    .iter()
                    .zip(p.iter())
                    .map(|(a, b)| i64::from((a & b).count_ones()))
                    .sum();
                if cnt >= best {
                    best = cnt;
                    pivot = u;
                }
            }
        }
    }

    // Candidates: P \ N(pivot), fixed before the loop.
    let mut cand = pool_take(pool, w);
    let prow = &rows[pivot * w..(pivot + 1) * w];
    for wi in 0..w {
        cand[wi] = p[wi] & !prow[wi];
    }

    for wi in 0..w {
        let mut bits = cand[wi];
        while bits != 0 {
            let v = (wi << 6) | bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let vrow = &rows[v * w..(v + 1) * w];
            let mut new_p = pool_take(pool, w);
            let mut new_x = pool_take(pool, w);
            for j in 0..w {
                new_p[j] = p[j] & vrow[j];
                new_x[j] = x[j] & vrow[j];
            }
            r.push(locals[v]);
            let flow = bitset_rec(w, rows, &mut new_p, &mut new_x, r, locals, pool, visit);
            r.pop();
            pool.push(new_p);
            pool.push(new_x);
            if flow.is_break() {
                pool.push(cand);
                return ControlFlow::Break(());
            }
            p[wi] &= !(1u64 << (v & 63));
            x[wi] |= 1u64 << (v & 63);
        }
    }
    pool.push(cand);
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_parses_and_displays() {
        for (s, k) in [
            ("auto", Kernel::Auto),
            ("bitset", Kernel::Bitset),
            ("merge", Kernel::Merge),
        ] {
            assert_eq!(s.parse::<Kernel>().unwrap(), k);
            assert_eq!(k.to_string(), s);
        }
        assert!("popcount".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Auto);
    }

    #[test]
    fn auto_thresholds_on_local_size() {
        assert!(Kernel::Auto.use_bitset(0));
        assert!(Kernel::Auto.use_bitset(AUTO_BITSET_MAX_LOCAL));
        assert!(!Kernel::Auto.use_bitset(AUTO_BITSET_MAX_LOCAL + 1));
        assert!(Kernel::Bitset.use_bitset(usize::MAX));
        assert!(!Kernel::Merge.use_bitset(0));
    }
}
