//! The Bron–Kerbosch family of maximal-clique enumerators.
//!
//! Three variants with identical output (asserted by property tests):
//!
//! - [`basic`] — the 1973 recursion, no pivoting. Exponentially slower on
//!   dense neighbourhoods; kept as the ground-truth oracle and as an
//!   ablation point for the benchmarks.
//! - [`pivot`] — Tomita–Tanaka–Takahashi pivoting: recurse only on
//!   `P \ N(u)` for a pivot `u` maximising `|P ∩ N(u)|`, giving the
//!   `O(3^{n/3})` worst-case optimum.
//! - [`degeneracy`] — Eppstein–Löffler–Strash: the outermost level walks a
//!   degeneracy ordering so each top-level subproblem has at most
//!   `degeneracy(G)` candidate vertices. The right default for sparse
//!   power-law graphs like the Internet AS topology.
//!
//! All sets (`P`, `X`, neighbour lists) are sorted vectors; intersections
//! are linear merges.

use crate::clique_set::CliqueSet;
use crate::kernel::{top_level_visit_bitset, BitsetScratch, Kernel};
use asgraph::{Graph, NodeId};
use std::ops::ControlFlow;

/// Intersection of a sorted slice with a sorted slice, into a fresh vec.
fn intersect(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Size of the intersection of two sorted slices.
fn intersect_count(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Enumerates maximal cliques with the unpivoted Bron–Kerbosch recursion.
///
/// Prefer [`degeneracy`] for anything but tiny graphs; this variant exists
/// as an oracle and ablation baseline.
pub fn basic(g: &Graph) -> CliqueSet {
    let mut out = CliqueSet::new();
    if g.node_count() == 0 {
        return out;
    }
    let p: Vec<NodeId> = g.node_ids().collect();
    let mut r = Vec::new();
    basic_rec(g, &mut r, p, Vec::new(), &mut out);
    out
}

fn basic_rec(
    g: &Graph,
    r: &mut Vec<NodeId>,
    p: Vec<NodeId>,
    mut x: Vec<NodeId>,
    out: &mut CliqueSet,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r);
        return;
    }
    // Walk P with a cursor: `p[i..]` is the not-yet-processed tail, so no
    // O(n) front shift per iteration (v itself is excluded from the
    // recursive P by `∩ N(v)`, since the graph has no self loops).
    for i in 0..p.len() {
        let v = p[i];
        let nv = g.neighbors(v);
        r.push(v);
        basic_rec(g, r, intersect(&p[i..], nv), intersect(&x, nv), out);
        r.pop();
        // insert v into x keeping it sorted
        let pos = x.binary_search(&v).unwrap_err();
        x.insert(pos, v);
    }
}

/// Enumerates maximal cliques with Tomita pivoting.
pub fn pivot(g: &Graph) -> CliqueSet {
    let mut out = CliqueSet::new();
    if g.node_count() == 0 {
        return out;
    }
    let p: Vec<NodeId> = g.node_ids().collect();
    let mut r = Vec::new();
    pivot_rec(g, &mut r, p, Vec::new(), &mut out);
    out
}

fn pivot_rec(g: &Graph, r: &mut Vec<NodeId>, p: Vec<NodeId>, x: Vec<NodeId>, out: &mut CliqueSet) {
    let _ = pivot_rec_visit(g, r, p, x, &mut |clique| {
        out.push(clique);
        ControlFlow::Continue(())
    });
}

/// The pivoted recursion in visitor form: maximal cliques are handed to
/// `visit` as they are found, without being collected anywhere. The
/// visitor can stop the whole enumeration by returning
/// [`ControlFlow::Break`].
fn pivot_rec_visit<F>(
    g: &Graph,
    r: &mut Vec<NodeId>,
    p: Vec<NodeId>,
    mut x: Vec<NodeId>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if p.is_empty() && x.is_empty() {
        return visit(r);
    }
    // Pivot: u in P ∪ X maximising |P ∩ N(u)|.
    let pivot_vertex = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| intersect_count(&p, g.neighbors(u)))
        .expect("P ∪ X non-empty here");
    let np = g.neighbors(pivot_vertex);

    // Candidates: P \ N(pivot).
    let candidates: Vec<NodeId> = {
        let mut out = Vec::new();
        let mut j = 0;
        for &v in &p {
            while j < np.len() && np[j] < v {
                j += 1;
            }
            if j >= np.len() || np[j] != v {
                out.push(v);
            }
        }
        out
    };

    let mut p_cur = p;
    for v in candidates {
        let nv = g.neighbors(v);
        r.push(v);
        let flow = pivot_rec_visit(g, r, intersect(&p_cur, nv), intersect(&x, nv), visit);
        r.pop();
        flow?;
        let pos = p_cur.binary_search(&v).expect("v still in P");
        p_cur.remove(pos);
        let pos = x.binary_search(&v).unwrap_err();
        x.insert(pos, v);
    }
    ControlFlow::Continue(())
}

/// Enumerates maximal cliques with the degeneracy-ordered outer loop and
/// pivoting inside — the recommended variant for sparse graphs.
///
/// # Example
///
/// ```
/// use asgraph::Graph;
/// use cliques::bron_kerbosch::degeneracy;
///
/// let g = Graph::complete(4);
/// let cliques = degeneracy(&g);
/// assert_eq!(cliques.len(), 1);
/// assert_eq!(cliques.get(0), &[0, 1, 2, 3]);
/// ```
pub fn degeneracy(g: &Graph) -> CliqueSet {
    degeneracy_with(g, Kernel::Auto)
}

/// [`degeneracy`] with an explicit set [`Kernel`].
///
/// All kernels produce identical cliques in identical order (the bitset
/// kernel replicates the merge kernel's recursion tree exactly); `Auto`
/// decides per subproblem from the local vertex-set size.
pub fn degeneracy_with(g: &Graph, kernel: Kernel) -> CliqueSet {
    let mut out = CliqueSet::new();
    let ordering = asgraph::ordering::degeneracy_order(g);
    let mut scratch = BitsetScratch::default();
    for &v in &ordering.order {
        top_level_subproblem(g, v, &ordering.rank, kernel, &mut scratch, &mut out);
    }
    out
}

/// The top-level subproblem of the degeneracy variant for vertex `v`:
/// P = later neighbours, X = earlier neighbours, R = {v}.
///
/// Exposed at crate level so the parallel enumerator can partition the
/// outer loop.
pub(crate) fn top_level_subproblem(
    g: &Graph,
    v: NodeId,
    rank: &[u32],
    kernel: Kernel,
    scratch: &mut BitsetScratch,
    out: &mut CliqueSet,
) {
    let _ = top_level_visit_with(g, v, rank, kernel, scratch, &mut |clique| {
        out.push(clique);
        ControlFlow::Continue(())
    });
}

/// Kernel dispatch for one top-level subproblem: the bitset kernel when
/// the local vertex set (all neighbours of `v`) fits the kernel's
/// threshold, the merge kernel otherwise.
pub(crate) fn top_level_visit_with<F>(
    g: &Graph,
    v: NodeId,
    rank: &[u32],
    kernel: Kernel,
    scratch: &mut BitsetScratch,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if kernel.use_bitset(g.degree(v)) {
        top_level_visit_bitset(g, v, rank, scratch, visit)
    } else {
        top_level_visit(g, v, rank, visit)
    }
}

/// Visitor form of [`top_level_subproblem`]: cliques are passed to
/// `visit` instead of collected.
pub(crate) fn top_level_visit<F>(
    g: &Graph,
    v: NodeId,
    rank: &[u32],
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let rv = rank[v as usize];
    let mut p = Vec::new();
    let mut x = Vec::new();
    for &w in g.neighbors(v) {
        if rank[w as usize] > rv {
            p.push(w);
        } else {
            x.push(w);
        }
    }
    // Neighbour lists are sorted by id, so p and x are too.
    let mut r = vec![v];
    pivot_rec_visit(g, &mut r, p, x, visit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut s: CliqueSet) -> CliqueSet {
        s.sort_canonical();
        s
    }

    fn all_variants(g: &Graph) -> (CliqueSet, CliqueSet, CliqueSet) {
        (sorted(basic(g)), sorted(pivot(g)), sorted(degeneracy(g)))
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = Graph::empty(0);
        assert!(basic(&g).is_empty());
        assert!(pivot(&g).is_empty());
        assert!(degeneracy(&g).is_empty());
    }

    #[test]
    fn isolated_vertices_are_maximal_singletons() {
        let g = Graph::empty(3);
        let (b, p, d) = all_variants(&g);
        assert_eq!(b.len(), 3);
        assert_eq!(b, p);
        assert_eq!(b, d);
        assert_eq!(b.get(0), &[0]);
    }

    #[test]
    fn single_clique() {
        let g = Graph::complete(5);
        let (b, p, d) = all_variants(&g);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(0), &[0, 1, 2, 3, 4]);
        assert_eq!(b, p);
        assert_eq!(b, d);
    }

    #[test]
    fn two_triangles_sharing_edge() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let (b, p, d) = all_variants(&g);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0), &[0, 1, 2]);
        assert_eq!(b.get(1), &[1, 2, 3]);
        assert_eq!(b, p);
        assert_eq!(b, d);
    }

    #[test]
    fn path_graph_cliques_are_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let (b, p, d) = all_variants(&g);
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|c| c.len() == 2));
        assert_eq!(b, p);
        assert_eq!(b, d);
    }

    #[test]
    fn star_graph() {
        // K1,4: maximal cliques are the 4 edges.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (b, p, d) = all_variants(&g);
        assert_eq!(b.len(), 4);
        assert_eq!(b, p);
        assert_eq!(b, d);
    }

    #[test]
    fn moon_moser_graph() {
        // K_{3x3} cocktail-party style: complete 3-partite graph K(2,2,2)
        // has 2*2*2 = 8 maximal cliques (Moon–Moser bound for n=6).
        let mut b = asgraph::GraphBuilder::with_nodes(6);
        let parts = [[0u32, 1], [2, 3], [4, 5]];
        for (i, pa) in parts.iter().enumerate() {
            for pb in parts.iter().skip(i + 1) {
                for &u in pa {
                    for &v in pb {
                        b.add_edge(u, v);
                    }
                }
            }
        }
        let g = b.build();
        let (bb, pp, dd) = all_variants(&g);
        assert_eq!(bb.len(), 8);
        assert!(bb.iter().all(|c| c.len() == 3));
        assert_eq!(bb, pp);
        assert_eq!(bb, dd);
    }

    #[test]
    fn bitset_and_merge_kernels_emit_identically() {
        // Not just the same cliques: the same cliques in the same order,
        // because the bitset kernel replicates the merge recursion tree.
        let graphs = [
            Graph::empty(4),
            Graph::complete(6),
            Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]),
            Graph::from_edges(
                7,
                [
                    (0, 1),
                    (0, 2),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (3, 5),
                    (4, 5),
                    (5, 6),
                ],
            ),
        ];
        for g in &graphs {
            let merge = degeneracy_with(g, Kernel::Merge);
            let bitset = degeneracy_with(g, Kernel::Bitset);
            assert_eq!(merge, bitset, "kernels diverged on {g:?}");
            assert_eq!(merge, degeneracy_with(g, Kernel::Auto));
        }
    }

    #[test]
    fn every_output_is_a_maximal_clique() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ],
        );
        let cliques = degeneracy(&g);
        for c in cliques.iter() {
            // clique: all pairs adjacent
            for (i, &u) in c.iter().enumerate() {
                for &v in &c[i + 1..] {
                    assert!(g.has_edge(u, v), "{u}-{v} missing in clique {c:?}");
                }
            }
            // maximal: no external vertex adjacent to all members
            for w in g.node_ids() {
                if c.contains(&w) {
                    continue;
                }
                let extends = c.iter().all(|&u| g.has_edge(u, w));
                assert!(!extends, "vertex {w} extends clique {c:?}");
            }
        }
    }
}
