//! Property tests: all enumeration variants agree and satisfy the
//! definition of maximal cliques.

use asgraph::{Graph, NodeId};
use cliques::bron_kerbosch::{basic, degeneracy, pivot};
use cliques::kclique::{count_k_cliques, enumerate_k_cliques};
use cliques::parallel::{max_cliques_parallel, max_cliques_parallel_with};
use cliques::{max_cliques_with, CliqueSet, Kernel};
use proptest::prelude::*;
use std::ops::ControlFlow;

fn edge_soup(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(NodeId, NodeId)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

fn canonical(mut s: CliqueSet) -> CliqueSet {
    s.sort_canonical();
    s
}

proptest! {
    /// basic == pivot == degeneracy == parallel on arbitrary small graphs.
    #[test]
    fn variants_agree(edges in edge_soup(18, 80)) {
        let g = Graph::from_edges(18, edges);
        let b = canonical(basic(&g));
        let p = canonical(pivot(&g));
        let d = canonical(degeneracy(&g));
        let par = canonical(max_cliques_parallel(&g, 3));
        prop_assert_eq!(&b, &p);
        prop_assert_eq!(&b, &d);
        prop_assert_eq!(&b, &par);
    }

    /// The bitset and merge set kernels are interchangeable: identical
    /// cliques in the identical emission order (not merely set-equal),
    /// through every front-end — collecting, visitor, and parallel —
    /// and both agree with the kernel-free textbook recursion.
    #[test]
    fn set_kernels_equivalent(edges in edge_soup(20, 90)) {
        let g = Graph::from_edges(20, edges);
        let merge = max_cliques_with(&g, Kernel::Merge);
        let bitset = max_cliques_with(&g, Kernel::Bitset);
        let auto = max_cliques_with(&g, Kernel::Auto);
        prop_assert_eq!(&merge, &bitset);
        prop_assert_eq!(&merge, &auto);

        // The streaming visitor path sees the same stream.
        for kernel in [Kernel::Bitset, Kernel::Merge] {
            let mut streamed = CliqueSet::new();
            let _ = cliques::for_each_max_clique_with(&g, kernel, |c| {
                streamed.push(c);
                ControlFlow::Continue(())
            });
            prop_assert_eq!(&streamed, &merge);
        }

        // Work stealing keeps the sequential order under every kernel.
        for kernel in [Kernel::Bitset, Kernel::Merge] {
            let par = max_cliques_parallel_with(&g, 3, kernel);
            prop_assert_eq!(&par, &merge);
        }

        // And the kernelled enumerations match the 1973 recursion.
        prop_assert_eq!(canonical(bitset), canonical(basic(&g)));
    }

    /// Every reported clique is a clique and is maximal; every vertex
    /// appears in at least one maximal clique.
    #[test]
    fn outputs_are_maximal_cliques(edges in edge_soup(16, 70)) {
        let g = Graph::from_edges(16, edges);
        let cliques = degeneracy(&g);
        let mut covered = vec![false; g.node_count()];
        for c in cliques.iter() {
            for (i, &u) in c.iter().enumerate() {
                covered[u as usize] = true;
                for &v in &c[i + 1..] {
                    prop_assert!(g.has_edge(u, v));
                }
            }
            for w in g.node_ids() {
                if !c.contains(&w) {
                    prop_assert!(!c.iter().all(|&u| g.has_edge(u, w)));
                }
            }
        }
        prop_assert!(covered.iter().all(|&x| x));
    }

    /// No duplicate maximal cliques.
    #[test]
    fn no_duplicates(edges in edge_soup(16, 70)) {
        let g = Graph::from_edges(16, edges);
        let cliques = canonical(degeneracy(&g));
        let mut all: Vec<Vec<NodeId>> = cliques.iter().map(<[NodeId]>::to_vec).collect();
        let before = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), before);
    }

    /// Every k-clique extends to some maximal clique, and every k-subset of
    /// a maximal clique is a k-clique: cross-check counts via containment.
    #[test]
    fn kcliques_consistent_with_maximal(edges in edge_soup(12, 40), k in 2usize..5) {
        let g = Graph::from_edges(12, edges);
        let maximal = degeneracy(&g);
        for c in enumerate_k_cliques(&g, k) {
            let inside_some = maximal
                .iter()
                .any(|m| c.iter().all(|v| m.binary_search(v).is_ok()));
            prop_assert!(inside_some, "k-clique {c:?} not inside any maximal clique");
        }
        // If a maximal clique of size >= k exists, there is at least one
        // k-clique.
        if maximal.iter().any(|m| m.len() >= k) {
            prop_assert!(count_k_cliques(&g, k) > 0);
        }
    }

    /// The largest maximal clique size equals the largest k with any
    /// k-clique.
    #[test]
    fn max_clique_size_agrees(edges in edge_soup(12, 40)) {
        let g = Graph::from_edges(12, edges);
        let maximal = degeneracy(&g);
        let omega = maximal.max_size();
        if g.node_count() > 0 {
            prop_assert!(count_k_cliques(&g, omega) > 0);
            prop_assert_eq!(count_k_cliques(&g, omega + 1), 0);
        }
    }
}
