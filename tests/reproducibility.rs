//! Determinism guarantees: identical seeds give identical analyses,
//! thread counts never change results, and the measurement pipeline is
//! stable.

use kclique::analysis::analyze;
use kclique::cpm;
use kclique::topology::{generate, ModelConfig};

#[test]
fn same_seed_same_everything() {
    let a = analyze(&ModelConfig::tiny(99), 2).unwrap();
    let b = analyze(&ModelConfig::tiny(99), 2).unwrap();
    assert_eq!(a.topo.graph, b.topo.graph);
    assert_eq!(a.result.total_communities(), b.result.total_communities());
    assert_eq!(a.tree.main_path(), b.tree.main_path());
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.infos, b.infos);
    assert_eq!(a.bounds, b.bounds);
}

#[test]
fn different_seed_different_topology() {
    let a = generate(&ModelConfig::tiny(1)).unwrap();
    let b = generate(&ModelConfig::tiny(2)).unwrap();
    assert_ne!(a.graph, b.graph);
}

#[test]
fn thread_count_is_invisible() {
    let topo = generate(&ModelConfig::tiny(5)).unwrap();
    let seq = cpm::percolate(&topo.graph);
    for threads in [1usize, 2, 3, 5] {
        let par = cpm::parallel::percolate_parallel(&topo.graph, threads);
        assert_eq!(seq.levels.len(), par.levels.len(), "threads {threads}");
        for (ls, lp) in seq.levels.iter().zip(par.levels.iter()) {
            assert_eq!(ls.communities, lp.communities, "level {} mismatch", ls.k);
        }
    }
}

#[test]
fn measurement_toggle_only_shrinks_the_graph() {
    let mut with = ModelConfig::tiny(11);
    with.simulate_measurement = true;
    let mut without = with.clone();
    without.simulate_measurement = false;
    let measured = generate(&with).unwrap();
    let truth = generate(&without).unwrap();
    assert!(measured.graph.node_count() <= truth.graph.node_count());
    assert!(
        measured.graph.edge_count() <= truth.graph.edge_count() + truth.graph.edge_count() / 50
    );
    assert!(measured.merge_report.is_some());
    assert!(truth.merge_report.is_none());
}

#[test]
fn edge_list_round_trip_preserves_percolation() {
    // Serialise the topology, read it back, re-run CPM: identical cover.
    let topo = generate(&ModelConfig::tiny(3)).unwrap();
    let text = kclique::graph::io::to_edge_list_string(&topo.graph);
    let reread = kclique::graph::io::parse_edge_list(&text).unwrap();
    let a = cpm::percolate(&topo.graph);
    let b = cpm::percolate(&reread);
    assert_eq!(a.total_communities(), b.total_communities());
    assert_eq!(a.k_max(), b.k_max());
}
