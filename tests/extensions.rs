//! Integration coverage of the extension subsystems through the facade.

use kclique::baselines::louvain::louvain;
use kclique::cpm;
use kclique::graph::digraph::DiGraph;
use kclique::graph::rewire::rewire;
use kclique::topology::{evolve, generate, EvolveConfig, ModelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> kclique::topology::AsTopology {
    generate(&ModelConfig::tiny(42)).expect("valid config")
}

#[test]
fn scp_and_reduction_agree_on_the_topology() {
    let topo = tiny();
    for k in [3usize, 4, 5] {
        assert_eq!(
            cpm::scp::scp_communities(&topo.graph, k),
            cpm::percolate_at(&topo.graph, k),
            "k = {k}"
        );
    }
}

#[test]
fn weighted_with_uniform_weights_matches_unweighted() {
    let topo = tiny();
    let mut b = kclique::graph::weighted::WeightedGraphBuilder::with_nodes(topo.graph.node_count());
    for (u, v) in topo.graph.edges() {
        b.add_edge(u, v, 1.0);
    }
    let wg = b.build();
    assert_eq!(
        cpm::weighted::weighted_communities(&wg, 4, 0.0),
        cpm::percolate_at(&topo.graph, 4)
    );
    // A huge threshold kills everything.
    assert!(cpm::weighted::weighted_communities(&wg, 4, 10.0).is_empty());
}

#[test]
fn directed_cover_is_coarser_or_equal_under_total_order() {
    let topo = tiny();
    let rank: Vec<u64> = topo
        .graph
        .node_ids()
        .map(|v| topo.graph.degree(v) as u64)
        .collect();
    let dig = DiGraph::orient_by_rank(&topo.graph, &rank);
    // Total-order orientation keeps every clique transitive: identical
    // covers.
    assert_eq!(
        cpm::directed::directed_communities(&dig, 3),
        cpm::percolate_at(&topo.graph, 3)
    );
}

#[test]
fn louvain_and_cpm_are_complementary() {
    let topo = tiny();
    let p = louvain(&topo.graph);
    assert!(p.modularity > 0.2);
    // Louvain covers everything exactly once; CPM at k=4 covers a dense
    // subset with overlaps.
    let total: usize = p.members().iter().map(Vec::len).sum();
    assert_eq!(total, topo.graph.node_count());
    let cover = cpm::percolate_at(&topo.graph, 4);
    let covered: usize = cover.iter().map(Vec::len).sum();
    assert!(covered < topo.graph.node_count());
}

#[test]
fn rewiring_preserves_degrees_but_not_communities() {
    let topo = tiny();
    let mut rng = StdRng::seed_from_u64(1);
    let (null, _) = rewire(&topo.graph, 10 * topo.graph.edge_count(), &mut rng);
    for v in topo.graph.node_ids() {
        assert_eq!(topo.graph.degree(v), null.degree(v));
    }
    let orig = cpm::percolate(&topo.graph);
    let nullr = cpm::percolate(&null);
    assert!(nullr.k_max().unwrap_or(0) < orig.k_max().unwrap());
}

#[test]
fn evolution_chain_keeps_analysis_runnable() {
    let mut topo = tiny();
    let mut results = vec![cpm::percolate(&topo.graph)];
    for step in 0..2u64 {
        let (next, churn) = evolve(
            &topo,
            &EvolveConfig {
                seed: step,
                ..Default::default()
            },
        );
        assert!(churn.births > 0);
        results.push(cpm::percolate(&next.graph));
        topo = next;
    }
    let step = kclique::analysis::evolution::match_covers(&results[0], &results[1], 4, 0.3);
    let matched = step.matches.iter().filter(|m| m.new.is_some()).count();
    assert!(matched > 0, "no community survived one churn step");
    let lifetimes = kclique::analysis::evolution::lifetimes(&results, 4, 0.3);
    assert!(!lifetimes.is_empty());
}

#[test]
fn dataset_round_trip_through_facade() {
    let topo = tiny();
    let dir = std::env::temp_dir().join(format!("kclique_ext_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    kclique::topology::io::save_dataset(&topo, &dir).unwrap();
    let loaded = kclique::topology::io::load_dataset(&dir).unwrap();
    assert_eq!(topo.graph, loaded.graph);
    assert_eq!(topo.tag_summary(), loaded.tag_summary());
    std::fs::remove_dir_all(&dir).unwrap();
}
