//! Cross-crate set-kernel equivalence on realistic substrates.
//!
//! The unit and property tests in `crates/cliques` prove bitset ≡ merge
//! on small random edge soups; here the oracle runs on seeded
//! `InternetModel` topologies — power-law degrees, dense IXP cores, the
//! clique structure the kernels were actually built for — and covers the
//! full pipelines: enumeration, streaming, percolation (sequential and
//! parallel), with a regression check that results are invariant under
//! thread count.

use kclique::cliques::{self, Kernel};
use kclique::cpm;
use kclique::stream::{CliqueSource, GraphSource};
use kclique::topology::{generate, ModelConfig};

fn internet_graph(seed: u64) -> kclique::graph::Graph {
    generate(&ModelConfig::tiny(seed))
        .expect("preset config is valid")
        .graph
}

fn assert_same_result(a: &cpm::CpmResult, b: &cpm::CpmResult, what: &str) {
    assert_eq!(a.cliques, b.cliques, "{what}: cliques differ");
    assert_eq!(a.levels, b.levels, "{what}: levels differ");
}

#[test]
fn kernels_agree_on_internet_model_enumeration() {
    for seed in [7, 23] {
        let g = internet_graph(seed);
        let merge = cliques::max_cliques_with(&g, Kernel::Merge);
        let bitset = cliques::max_cliques_with(&g, Kernel::Bitset);
        let auto = cliques::max_cliques_with(&g, Kernel::Auto);
        // Order-exact, not merely set-equal: the kernels replicate the
        // same recursion tree.
        assert_eq!(merge, bitset, "seed {seed}");
        assert_eq!(merge, auto, "seed {seed}");
        assert!(!merge.is_empty(), "seed {seed}: degenerate fixture");
    }
}

#[test]
fn kernels_agree_through_streaming_source() {
    let g = internet_graph(11);
    let mut streams = Vec::new();
    for kernel in [Kernel::Merge, Kernel::Bitset] {
        let mut out: Vec<Vec<u32>> = Vec::new();
        GraphSource::with_kernel(&g, kernel)
            .replay(&mut |c| out.push(c.to_vec()))
            .expect("in-memory replay cannot fail");
        streams.push(out);
    }
    assert_eq!(streams[0], streams[1], "clique streams diverge by kernel");
    assert!(!streams[0].is_empty());
}

#[test]
fn kernels_agree_through_full_percolation() {
    let g = internet_graph(5);
    let merge = cpm::percolate_with_kernel(&g, Kernel::Merge);
    let bitset = cpm::percolate_with_kernel(&g, Kernel::Bitset);
    let auto = cpm::percolate(&g);
    assert_same_result(&merge, &bitset, "merge vs bitset");
    assert_same_result(&merge, &auto, "merge vs auto");
    assert!(
        merge.k_max().unwrap_or(0) >= 3,
        "fixture too sparse to be meaningful"
    );
}

#[test]
fn parallel_percolation_is_thread_count_invariant() {
    // Regression guard for the work-stealing scheduler: the claimed
    // chunks race, but the reassembled result must not depend on how
    // many workers raced.
    let g = internet_graph(3);
    let reference = cpm::percolate(&g);
    for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
        for threads in [1, 2, 3, 7] {
            let par = cpm::parallel::percolate_parallel_with_kernel(&g, threads, kernel);
            assert_same_result(
                &reference,
                &par,
                &format!("threads {threads}, kernel {kernel}"),
            );
        }
    }
}
