//! Fault-injected end-to-end recovery: a clique-log build killed
//! mid-write must lose nothing durable. The torn image recovers to a
//! segment-aligned prefix, a resumed build completes the log, and the
//! completed log is **bit-identical** to one written without the crash
//! — so every downstream percolation result is identical too.

use cpm_stream::faultio::{FaultPlan, FaultyWriter};
use cpm_stream::{
    stream_percolate, CliqueLogReader, CliqueLogWriter, CliqueSource, GraphSource, LogBuildOptions,
    LogSource,
};

/// Checkpoint cadence for these tests: small enough that a kill lands
/// well inside the stream, large enough to span several pushes.
const CHECKPOINT: usize = 8;

fn random_graph(n: u32, p: f64, seed: u64) -> asgraph::Graph {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kclique_faultio_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All cliques of `g` in stream order.
fn clique_stream(g: &asgraph::Graph) -> Vec<Vec<asgraph::NodeId>> {
    let mut out = Vec::new();
    GraphSource::new(g)
        .replay(&mut |c| out.push(c.to_vec()))
        .unwrap();
    out
}

#[test]
fn kill_mid_write_recover_resume_is_bit_identical() {
    let g = random_graph(60, 0.15, 177);
    let cliques = clique_stream(&g);
    assert!(
        cliques.len() > 3 * CHECKPOINT,
        "graph too sparse to make the test meaningful"
    );
    let dir = scratch_dir("kill");

    // Baseline: the log a crash-free build writes.
    let baseline_path = dir.join("baseline.cliquelog");
    let baseline = cpm_stream::build_clique_log(
        &g,
        &baseline_path,
        &LogBuildOptions {
            checkpoint_cliques: CHECKPOINT,
            ..LogBuildOptions::default()
        },
    )
    .unwrap();
    assert!(!baseline.interrupted);
    let baseline_bytes = std::fs::read(&baseline_path).unwrap();

    // Crash: the same build through a sink that dies mid-segment.
    let budget = baseline_bytes.len() as u64 / 2;
    let mut sink = FaultyWriter::new(FaultPlan::kill_after(budget));
    let mut writer =
        CliqueLogWriter::from_sink(&mut sink, g.node_count() as u32, CHECKPOINT).unwrap();
    let mut crashed = false;
    for c in &cliques {
        if writer.push(c).is_err() {
            crashed = true;
            break;
        }
    }
    assert!(crashed, "byte budget must be hit before the stream ends");
    drop(writer);
    assert!(sink.is_dead());
    let torn_path = dir.join("torn.cliquelog");
    std::fs::write(&torn_path, sink.into_bytes()).unwrap();

    // The torn file does not open as a finished log...
    let err = CliqueLogReader::open(&torn_path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // ...but recovery salvages every sealed segment: a whole number of
    // checkpoints, all of them a strict prefix of the true stream.
    let report = CliqueLogReader::recover(&torn_path).unwrap();
    assert!(!report.was_finished);
    assert!(report.cliques_recovered > 0, "kill landed before any seal");
    assert!(report.cliques_recovered < cliques.len() as u64);
    assert_eq!(report.cliques_recovered % CHECKPOINT as u64, 0);
    let mut salvaged = Vec::new();
    let mut reader = CliqueLogReader::open(&torn_path).unwrap();
    let mut buf = Vec::new();
    while reader.read_next(&mut buf).unwrap() {
        salvaged.push(buf.clone());
    }
    assert_eq!(salvaged[..], cliques[..salvaged.len()]);

    // Resume completes the log; the bytes match the crash-free build
    // exactly, because recovery cut at a checkpoint boundary.
    let outcome = cpm_stream::build_clique_log(
        &g,
        &torn_path,
        &LogBuildOptions {
            checkpoint_cliques: CHECKPOINT,
            resume: true,
            ..LogBuildOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.resumed_from, report.cliques_recovered);
    assert!(!outcome.interrupted);
    assert_eq!(outcome.info.clique_count, cliques.len() as u64);
    assert_eq!(std::fs::read(&torn_path).unwrap(), baseline_bytes);

    // And the percolation results downstream are identical to the
    // live-graph sweep.
    let from_log = stream_percolate(&mut LogSource::open(&torn_path).unwrap()).unwrap();
    let from_graph = stream_percolate(&mut GraphSource::new(&g)).unwrap();
    assert_eq!(from_log.levels, from_graph.levels);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_at_every_interesting_budget_stays_recoverable() {
    let g = random_graph(40, 0.18, 9);
    let cliques = clique_stream(&g);
    let dir = scratch_dir("budgets");
    let baseline_path = dir.join("baseline.cliquelog");
    cpm_stream::build_clique_log(
        &g,
        &baseline_path,
        &LogBuildOptions {
            checkpoint_cliques: 4,
            ..LogBuildOptions::default()
        },
    )
    .unwrap();
    let full_len = std::fs::read(&baseline_path).unwrap().len() as u64;

    // Sweep budgets across the whole file, including killing inside
    // the header, inside a frame header, and inside the footer.
    let torn_path = dir.join("torn.cliquelog");
    for step in 0..=20 {
        let budget = full_len * step / 20;
        let mut sink = FaultyWriter::new(FaultPlan::kill_after(budget));
        let mut writer = match CliqueLogWriter::from_sink(&mut sink, g.node_count() as u32, 4) {
            Ok(w) => w,
            // Killed inside the 12-byte header: nothing to recover,
            // nothing to assert.
            Err(_) => continue,
        };
        let mut ok = true;
        for c in &cliques {
            if writer.push(c).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            let _ = writer.finish();
        } else {
            drop(writer);
        }
        std::fs::write(&torn_path, sink.into_bytes()).unwrap();

        let report = match CliqueLogReader::recover(&torn_path) {
            Ok(r) => r,
            Err(e) => {
                // Only a headerless stub is unrecoverable.
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "budget {budget}");
                continue;
            }
        };
        // Whatever survived must resume to the complete stream.
        let outcome = cpm_stream::build_clique_log(
            &g,
            &torn_path,
            &LogBuildOptions {
                checkpoint_cliques: 4,
                resume: true,
                ..LogBuildOptions::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.resumed_from, report.cliques_recovered);
        assert_eq!(
            outcome.info.clique_count,
            cliques.len() as u64,
            "budget {budget}"
        );
        let from_log = stream_percolate(&mut LogSource::open(&torn_path).unwrap()).unwrap();
        let from_graph = stream_percolate(&mut GraphSource::new(&g)).unwrap();
        assert_eq!(from_log.levels, from_graph.levels, "budget {budget}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_on_the_read_path_is_caught_not_believed() {
    use cpm_stream::faultio::FaultyReader;
    use std::io::Read;

    let g = random_graph(30, 0.2, 5);
    let dir = scratch_dir("readflip");
    let path = dir.join("log.cliquelog");
    cpm_stream::write_clique_log(&g, &path).unwrap();
    let clean = std::fs::read(&path).unwrap();

    // Stream the file through a reader that flips one bit in a payload
    // region, persist the corrupted copy, and decode it: the CRC must
    // reject it rather than hand back altered cliques.
    let offset = (clean.len() / 2) as u64;
    let mut corrupted = Vec::new();
    FaultyReader::new(&clean[..], offset, 0x10)
        .read_to_end(&mut corrupted)
        .unwrap();
    assert_ne!(clean, corrupted);
    std::fs::write(&path, &corrupted).unwrap();

    let mut saw_error = false;
    match CliqueLogReader::open(&path) {
        Err(e) => {
            assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
            saw_error = true;
        }
        Ok(mut reader) => {
            let mut buf = Vec::new();
            loop {
                match reader.read_next(&mut buf) {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(e) => {
                        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                        saw_error = true;
                        break;
                    }
                }
            }
        }
    }
    assert!(saw_error, "a flipped payload bit must not decode silently");
    std::fs::remove_dir_all(&dir).unwrap();
}
