//! End-to-end integration: the paper's qualitative findings must hold on
//! the synthetic topology, exercised exclusively through the public
//! facade API.

use kclique::analysis::{analyze, overlap_report, Segment};
use kclique::topology::ModelConfig;

fn small_analysis() -> kclique::analysis::Analysis {
    analyze(&ModelConfig::small(42), 2).expect("preset config is valid")
}

#[test]
fn single_connected_component_gives_single_2_community() {
    let analysis = small_analysis();
    assert!(kclique::graph::components::is_connected(
        &analysis.topo.graph
    ));
    assert_eq!(analysis.result.level(2).unwrap().communities.len(), 1);
    assert_eq!(
        analysis.result.level(2).unwrap().communities[0].size(),
        analysis.topo.graph.node_count()
    );
}

#[test]
fn main_path_sizes_decrease_with_k() {
    let analysis = small_analysis();
    let sizes: Vec<usize> = analysis
        .tree
        .main_path()
        .iter()
        .map(|id| analysis.tree.node(*id).unwrap().size)
        .collect();
    for w in sizes.windows(2) {
        assert!(w[0] >= w[1], "main community grew with k: {sizes:?}");
    }
    // Figure 4.3's headline: the main community shrinks *rapidly*.
    assert!(sizes[0] >= 10 * sizes[sizes.len() - 1]);
}

#[test]
fn nesting_theorem_holds_everywhere() {
    let analysis = small_analysis();
    for (id, c) in analysis.result.iter() {
        if id.k == 2 {
            continue;
        }
        let parent = analysis.result.parent(id).expect("non-root has parent");
        let pc = analysis.result.community(parent).unwrap();
        assert!(
            c.members.iter().all(|v| pc.contains(*v)),
            "community {id} not inside its parent {parent}"
        );
    }
}

#[test]
fn communities_at_low_k_outnumber_high_k() {
    // Figure 4.1's shape.
    let analysis = small_analysis();
    let k_max = analysis.result.k_max().unwrap();
    let low: usize = (3..=5)
        .filter_map(|k| analysis.result.level(k))
        .map(|l| l.communities.len())
        .sum();
    let high: usize = (k_max - 2..=k_max)
        .filter_map(|k| analysis.result.level(k))
        .map(|l| l.communities.len())
        .sum();
    assert!(low > 3 * high, "low-k {low} vs high-k {high}");
}

#[test]
fn crown_communities_are_ixp_dominated() {
    // §4.1: crown ASes participate in the large IXPs.
    let analysis = small_analysis();
    let crown: Vec<_> = analysis
        .infos
        .iter()
        .filter(|i| analysis.bounds.segment_of(i.id.k) == Segment::Crown)
        .collect();
    assert!(!crown.is_empty(), "no crown communities detected");
    for info in &crown {
        assert!(
            info.on_ixp_fraction > 0.85,
            "crown community {} only {:.2} on-IXP",
            info.id,
            info.on_ixp_fraction
        );
    }
    // Their best-matching exchanges are the large ones.
    let large_max_share = crown
        .iter()
        .filter(|i| {
            i.max_share_ixp
                .is_some_and(|(x, _, _)| analysis.topo.ixps[x as usize].large)
        })
        .count();
    assert!(large_max_share * 2 > crown.len());
}

#[test]
fn root_communities_are_small_and_regional() {
    // §4.3: root parallel communities are small AS groups, most fully
    // inside one country.
    let analysis = small_analysis();
    let roots: Vec<_> = analysis
        .infos
        .iter()
        .filter(|i| analysis.bounds.segment_of(i.id.k) == Segment::Root && !i.is_main)
        .collect();
    assert!(roots.len() >= 20, "only {} root parallels", roots.len());
    let avg_size: f64 = roots.iter().map(|i| i.size as f64).sum::<f64>() / roots.len() as f64;
    assert!(avg_size < 15.0, "root parallels too big: {avg_size}");
    let contained = roots
        .iter()
        .filter(|i| i.containing_country.is_some())
        .count();
    assert!(
        contained * 2 > roots.len(),
        "only {contained}/{} country-contained",
        roots.len()
    );
}

#[test]
fn parallel_main_overlap_behaves_like_the_paper() {
    // §4: parallel communities mostly share members with their main
    // community, with few disjoint exceptions.
    let analysis = small_analysis();
    let report = overlap_report(&analysis.result, &analysis.tree);
    let mean = report.parallel_main_mean.expect("levels with parallels");
    assert!(
        (0.2..=1.0).contains(&mean),
        "parallel-main mean {mean} out of plausible band"
    );
    let total_parallel: usize = report.per_k.iter().map(|s| s.parallel_count).sum();
    assert!(
        report.total_disjoint_from_main * 4 < total_parallel,
        "{} of {} parallels disjoint from main",
        report.total_disjoint_from_main,
        total_parallel
    );
}

#[test]
fn tag_summary_partitions_the_node_set() {
    let analysis = small_analysis();
    let s = analysis.topo.tag_summary();
    let n = analysis.topo.graph.node_count();
    assert_eq!(s.on_ixp + s.not_on_ixp, n);
    assert_eq!(s.national + s.continental + s.worldwide + s.unknown, n);
    assert!(s.not_on_ixp > s.on_ixp, "Table 2.1 shape");
    assert!(s.national * 2 > n, "Table 2.2 shape");
}

#[test]
fn metric_rows_match_figure_4_4_regimes() {
    let analysis = small_analysis();
    let (main, parallel): (Vec<_>, Vec<_>) = analysis.rows.iter().partition(|r| r.is_main);
    // Main communities at low k are large chains: low link density.
    let main3 = main.iter().find(|r| r.id.k == 3).unwrap();
    assert!(main3.link_density < 0.05);
    assert!(main3.size > 500);
    // Most parallel communities are clique-like: high density.
    let dense = parallel.iter().filter(|r| r.link_density > 0.8).count();
    assert!(dense * 2 > parallel.len());
    // ODF is a fraction everywhere.
    for r in &analysis.rows {
        assert!((0.0..=1.0).contains(&r.average_odf));
        assert!((0.0..=1.0).contains(&r.link_density));
    }
}
