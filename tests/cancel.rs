//! Cooperative-cancellation invariance: cancelling and resuming must
//! change *nothing* about the final answer, at every worker count, and
//! a cancelled run must leave the shared worker pool fully reusable.

use cliques::Kernel;
use cpm_stream::{stream_percolate, CliqueSource, GraphSource, LogBuildOptions, LogSource};
use exec::{CancelToken, Pool};

fn random_graph(n: u32, p: f64, seed: u64) -> asgraph::Graph {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kclique_cancel_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A live (never-tripped) token is invisible: the cancellable pipeline
/// produces bit-identical results to the plain one at 1, 2, and 4
/// workers.
#[test]
fn live_token_is_invariant_at_every_worker_count() {
    let g = random_graph(70, 0.12, 23);
    let reference = cpm::percolate(&g);
    let token = CancelToken::new();
    for threads in [1, 2, 4] {
        let got = cpm::parallel::percolate_parallel_cancellable(&g, threads, Kernel::Auto, &token)
            .expect("live token never cancels");
        assert_eq!(got.levels, reference.levels, "threads {threads}");
    }
}

/// Cancel-then-resume of a log build converges to the uninterrupted
/// answer: whatever prefix a cancelled build sealed, the resumed build
/// completes the identical clique stream, and the percolation of the
/// finished log matches the live graph at every worker count.
#[test]
fn cancel_then_resume_matches_uninterrupted() {
    let g = random_graph(50, 0.16, 31);
    let full: Vec<Vec<asgraph::NodeId>> = {
        let mut out = Vec::new();
        GraphSource::new(&g)
            .replay(&mut |c| out.push(c.to_vec()))
            .unwrap();
        out
    };
    let dir = scratch_dir("resume");
    let path = dir.join("log.cliquelog");
    let reference = stream_percolate(&mut GraphSource::new(&g)).unwrap();

    // Interruption points: immediately, mid-segment, at a segment
    // boundary, one short of the end.
    let checkpoint = 4;
    for cut in [0, 1, 3, 4, 9, full.len().saturating_sub(1)] {
        // A pre-tripped token models the worst case — cancelled before
        // the first clique — and exercises build_clique_log's
        // interrupted-but-sealed path end to end.
        let _ = std::fs::remove_file(&path);
        let tripped = CancelToken::new();
        tripped.cancel();
        let outcome = cpm_stream::build_clique_log(
            &g,
            &path,
            &LogBuildOptions {
                checkpoint_cliques: checkpoint,
                cancel: Some(tripped),
                ..LogBuildOptions::default()
            },
        )
        .unwrap();
        assert!(outcome.interrupted);
        assert_eq!(outcome.info.clique_count, 0);

        // Simulate a build cancelled after `cut` cliques: exactly the
        // sealed, finished log such a build leaves behind (a cancelled
        // build finishes its log; only crashes tear — tests/faultio.rs
        // covers those).
        let mut writer =
            cpm_stream::CliqueLogWriter::with_checkpoint(&path, g.node_count() as u32, checkpoint)
                .unwrap();
        for c in &full[..cut] {
            writer.push(c).unwrap();
        }
        writer.finish().unwrap();

        // Resume from the sealed prefix: the outcome must be the full
        // stream, whatever the cut.
        let outcome = cpm_stream::build_clique_log(
            &g,
            &path,
            &LogBuildOptions {
                checkpoint_cliques: checkpoint,
                resume: true,
                ..LogBuildOptions::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.resumed_from, cut as u64, "cut {cut}");
        assert!(!outcome.interrupted);
        assert_eq!(outcome.info.clique_count, full.len() as u64, "cut {cut}");

        let mut replayed = Vec::new();
        let mut src = LogSource::open(&path).unwrap();
        src.replay(&mut |c| replayed.push(c.to_vec())).unwrap();
        assert_eq!(replayed, full, "cut {cut}");

        let from_log = stream_percolate(&mut LogSource::open(&path).unwrap()).unwrap();
        assert_eq!(from_log.levels, reference.levels, "cut {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cancelled parallel run drains through the normal job protocol: no
/// poisoned locks, no stuck workers, no extra threads on the next call.
#[test]
fn cancelled_runs_leave_the_pool_reusable() {
    let g = random_graph(60, 0.15, 47);
    let reference = cpm::percolate(&g);
    let tripped = CancelToken::new();
    tripped.cancel();

    // Warm the pool, then record its thread census.
    let warm = cpm::parallel::percolate_parallel(&g, 4);
    assert_eq!(warm.levels, reference.levels);
    let spawned = Pool::global().spawned_threads();

    for threads in [2, 4] {
        assert!(
            cpm::parallel::percolate_parallel_cancellable(&g, threads, Kernel::Auto, &tripped)
                .is_err(),
            "threads {threads}"
        );
        assert!(
            cliques::parallel::max_cliques_parallel_cancellable(
                &g,
                threads,
                Kernel::Auto,
                &tripped
            )
            .is_err(),
            "threads {threads}"
        );
        // Immediately after each cancelled run the pool must do full
        // correct work again, without spawning replacement threads.
        let again = cpm::parallel::percolate_parallel(&g, threads);
        assert_eq!(again.levels, reference.levels, "threads {threads}");
        assert_eq!(
            Pool::global().spawned_threads(),
            spawned,
            "cancelled run leaked or killed pool threads"
        );
    }
}
