//! Fused-pipeline invariance: the sink-driven percolator must be
//! bit-identical to itself at every worker count, agree with the staged
//! pipeline on every cover, and — like `tests/cancel.rs` — leave the
//! shared worker pool fully reusable and the run resumable after a
//! cancellation mid-enumeration.

use cliques::Kernel;
use cpm::Mode;
use exec::{CancelToken, Pool};
use proptest::prelude::*;

fn random_graph(n: u32, p: f64, seed: u64) -> asgraph::Graph {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = asgraph::GraphBuilder::with_nodes(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Canonically sorted member lists per level — the order-independent
/// view shared by the fused and staged pipelines.
fn covers(levels: &[cpm::KLevel]) -> Vec<(u32, Vec<Vec<asgraph::NodeId>>)> {
    levels
        .iter()
        .map(|l| {
            let mut ms: Vec<_> = l.communities.iter().map(|c| c.members.clone()).collect();
            ms.sort_unstable();
            (l.k, ms)
        })
        .collect()
}

/// The parallel fused driver reassembles work-stolen chunks in order,
/// so the result is *strictly equal* — ordinals, parents, everything —
/// to the sequential run at 1, 2, 4, and 7 workers, for both modes and
/// every kernel.
#[test]
fn fused_parallel_is_bit_identical_at_every_worker_count() {
    let g = random_graph(70, 0.12, 23);
    for mode in [Mode::Exact, Mode::Almost] {
        let sequential = cpm::percolate_fused(&g, mode);
        assert_eq!(
            covers(&sequential.levels),
            covers(&cpm::percolate_mode(&g, mode).levels),
            "{mode}: fused differs from staged"
        );
        for threads in [1usize, 2, 4, 7] {
            assert_eq!(
                sequential,
                cpm::percolate_fused_parallel(&g, threads, mode),
                "{mode} threads {threads}"
            );
            for kernel in [Kernel::Bitset, Kernel::Merge] {
                let token = CancelToken::new();
                let got = cpm::percolate_fused_cancellable(&g, threads, kernel, &token, mode)
                    .expect("live token never cancels");
                assert_eq!(sequential, got, "{mode} threads {threads} kernel {kernel}");
            }
        }
    }
}

/// A run cancelled mid-enumeration drains through the normal job
/// protocol: the pool spawns no replacement threads, and an immediate
/// retry with a live token produces the full, bit-identical answer —
/// the fused pipeline is resumable by rerunning, exactly like
/// `tests/cancel.rs` proves for the staged one.
#[test]
fn fused_cancellation_leaves_the_pool_reusable_and_the_run_resumable() {
    let g = random_graph(60, 0.15, 47);
    let reference = cpm::percolate_fused(&g, Mode::Almost);

    // Warm the pool, then record its thread census.
    let warm = cpm::percolate_fused_parallel(&g, 4, Mode::Almost);
    assert_eq!(warm, reference);
    let spawned = Pool::global().spawned_threads();

    let tripped = CancelToken::new();
    tripped.cancel();
    for threads in [1usize, 2, 4] {
        for mode in [Mode::Exact, Mode::Almost] {
            assert!(
                cpm::percolate_fused_cancellable(&g, threads, Kernel::Auto, &tripped, mode)
                    .is_err(),
                "{mode} threads {threads}: tripped token must cancel"
            );
        }
        // Immediately after each cancelled run the pool must do full
        // correct work again, without spawning replacement threads.
        let again = cpm::percolate_fused_parallel(&g, threads, Mode::Almost);
        assert_eq!(again, reference, "threads {threads}");
        assert_eq!(
            Pool::global().spawned_threads(),
            spawned,
            "cancelled fused run leaked or killed pool threads"
        );
    }
}

/// `m` triangles sharing one common edge — every pair of the `m`
/// maximal cliques overlaps in exactly 2 vertices, so the k = 3 stratum
/// holds `m·(m−1)/2` pairs. `m = 150` gives 11 175, crossing the
/// parallel sweep's `PAR_UNION_MIN` (8 192) so the chunk-queue drain
/// path runs, not just the leader-inline one.
fn book_graph(m: u32) -> asgraph::Graph {
    let mut b = asgraph::GraphBuilder::with_nodes(m as usize + 2);
    for w in 2..m + 2 {
        b.add_edge(0, 1);
        b.add_edge(0, w);
        b.add_edge(1, w);
    }
    b.build()
}

/// Builds the percolator by the *sequential* sink so the engine state
/// is identical across runs; only the finish path under test varies.
fn consumed(g: &asgraph::Graph, mode: Mode) -> cpm::FusedPercolator {
    let mut p = cpm::FusedPercolator::new(g.node_count(), mode);
    cliques::consume_max_cliques(g, Kernel::Auto, &mut p);
    p
}

/// The finish-time phases (pair detection, sweep, extraction) on the
/// pool are strictly equal — ordinals, parents, members, everything —
/// to the sequential `finish()` at 1, 2, 4, and 7 workers, for both
/// modes, on a substrate whose k = 3 stratum crosses the parallel
/// sweep's chunk-queue threshold.
#[test]
fn parallel_finish_is_bit_identical_to_sequential_finish() {
    for g in [random_graph(70, 0.12, 23), book_graph(150)] {
        for mode in [Mode::Exact, Mode::Almost] {
            let sequential = consumed(&g, mode).finish();
            for threads in [1usize, 2, 4, 7] {
                assert_eq!(
                    sequential,
                    consumed(&g, mode).finish_parallel(threads),
                    "{mode} threads {threads}"
                );
                let token = CancelToken::new();
                let got = consumed(&g, mode)
                    .finish_cancellable(threads, &token)
                    .expect("live token never cancels");
                assert_eq!(sequential, got, "{mode} cancellable threads {threads}");
            }
        }
    }
}

/// A token tripped *between* enumeration and finish interrupts the
/// finish-time phases themselves: the pool spawns no replacement
/// threads, and re-consuming with a live token produces the full,
/// bit-identical answer.
#[test]
fn cancellation_mid_finish_leaves_the_pool_reusable() {
    let g = book_graph(150);
    // Warm the pool, then record its thread census.
    let _ = cpm::percolate_fused_parallel(&g, 4, Mode::Almost);
    let spawned = Pool::global().spawned_threads();

    let tripped = CancelToken::new();
    tripped.cancel();
    for mode in [Mode::Exact, Mode::Almost] {
        let reference = consumed(&g, mode).finish();
        for threads in [1usize, 2, 4] {
            assert!(
                consumed(&g, mode)
                    .finish_cancellable(threads, &tripped)
                    .is_err(),
                "{mode} threads {threads}: tripped token must cancel the finish"
            );
            let again = consumed(&g, mode)
                .finish_cancellable(threads, &CancelToken::new())
                .expect("live token never cancels");
            assert_eq!(
                again, reference,
                "{mode} threads {threads}: retry after cancel"
            );
            assert_eq!(
                Pool::global().spawned_threads(),
                spawned,
                "cancelled finish leaked or killed pool threads"
            );
        }
    }
}

fn edge_soup(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    /// Fused ≡ staged covers and per-k byte identity on random soups,
    /// both modes, with the parallel driver strictly equal to the
    /// sequential one at 1/2/4/7 workers.
    #[test]
    fn fused_equals_staged_across_workers(edges in edge_soup(14, 50)) {
        let g = asgraph::Graph::from_edges(14, edges);
        for mode in [Mode::Exact, Mode::Almost] {
            let fused = cpm::percolate_fused(&g, mode);
            let staged = cpm::percolate_mode(&g, mode);
            prop_assert_eq!(fused.clique_count, staged.cliques.len());
            prop_assert_eq!(covers(&fused.levels), covers(&staged.levels));
            for threads in [1usize, 2, 4, 7] {
                prop_assert_eq!(
                    &fused,
                    &cpm::percolate_fused_parallel(&g, threads, mode),
                    "mode {} threads {}", mode, threads
                );
            }
            for k in 2..=5usize {
                prop_assert_eq!(
                    cpm::percolate_at_fused(&g, k, mode),
                    cpm::percolate_at_mode(&g, k, mode),
                    "mode {} k {}", mode, k
                );
            }
        }
    }
}
