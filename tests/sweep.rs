//! Fused-sweep equivalence on realistic substrates.
//!
//! The unit and property tests in `crates/cpm` prove fused ≡ legacy on
//! random edge soups; here the oracle is the seeded `InternetModel` —
//! power-law degrees, dense IXP cores, deep overlap strata — and the
//! assertion is full bit-identity of the `CpmResult` (community tree
//! parents included) across sweeps, kernels, and thread counts, plus
//! agreement of the streaming percolator under both sweeps.

use kclique::cliques::Kernel;
use kclique::cpm::{self, Sweep};
use kclique::stream::{self, GraphSource};
use kclique::topology::{generate, ModelConfig};

fn internet_graph(seed: u64) -> kclique::graph::Graph {
    generate(&ModelConfig::tiny(seed))
        .expect("preset config is valid")
        .graph
}

fn assert_same_result(a: &cpm::CpmResult, b: &cpm::CpmResult, what: &str) {
    assert_eq!(a.cliques, b.cliques, "{what}: cliques differ");
    assert_eq!(a.levels, b.levels, "{what}: levels differ");
}

#[test]
fn fused_matches_legacy_on_internet_model() {
    for seed in [7, 23] {
        let g = internet_graph(seed);
        let legacy = cpm::percolate_with(&g, Kernel::Auto, Sweep::Legacy);
        let fused = cpm::percolate_with(&g, Kernel::Auto, Sweep::Fused);
        assert_same_result(&legacy, &fused, &format!("seed {seed}"));
        assert!(
            legacy.k_max().unwrap_or(0) >= 3,
            "seed {seed}: fixture too sparse to exercise the strata"
        );
    }
}

#[test]
fn fused_sweep_is_thread_count_invariant() {
    // The concurrent union–find races freely inside each stratum; the
    // result must not depend on how many workers raced, and must equal
    // the legacy sequential sweep bit for bit.
    let g = internet_graph(3);
    let reference = cpm::percolate_with(&g, Kernel::Auto, Sweep::Legacy);
    for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
        for threads in [1, 2, 4, 7] {
            let par = cpm::parallel::percolate_parallel_with(&g, threads, kernel, Sweep::Fused);
            assert_same_result(
                &reference,
                &par,
                &format!("threads {threads}, kernel {kernel}"),
            );
        }
    }
}

#[test]
fn strata_match_flat_edges_on_internet_model() {
    let g = internet_graph(11);
    let cliques = {
        let mut c = kclique::cliques::max_cliques(&g);
        c.canonicalize();
        c
    };
    let index = cpm::build_vertex_index(&cliques, g.node_count());
    let flat = cpm::overlap_edges(&cliques, &index);
    for threads in [1, 4] {
        let strata = cpm::parallel::overlap_strata_parallel(&cliques, &index, threads);
        assert_eq!(strata.edge_count(), flat.len(), "threads {threads}");
        for o in 1..strata.max_size() {
            let expect: Vec<(u32, u32)> = flat
                .iter()
                .filter(|e| e.overlap as usize == o)
                .map(|e| (e.a, e.b))
                .collect();
            assert_eq!(
                strata.stratum(o),
                expect.as_slice(),
                "threads {threads}, stratum {o}"
            );
        }
    }
}

#[test]
fn streaming_sweeps_agree_on_internet_model() {
    let g = internet_graph(5);
    let fused = stream::stream_percolate_with(&mut GraphSource::new(&g), Sweep::Fused)
        .expect("in-memory replay cannot fail");
    let legacy = stream::stream_percolate_with(&mut GraphSource::new(&g), Sweep::Legacy)
        .expect("in-memory replay cannot fail");
    assert_eq!(fused.levels, legacy.levels);
    assert!(fused.k_max().unwrap_or(0) >= 3, "fixture too sparse");
}
