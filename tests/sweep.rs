//! Parallel-sweep equivalence on realistic substrates.
//!
//! The unit and property tests in `crates/cpm` prove the pooled
//! pipeline bit-identical to the sequential one on random edge soups;
//! here the oracle is the seeded `InternetModel` — power-law degrees,
//! dense IXP cores, deep overlap strata — and the assertion is full
//! bit-identity of the `CpmResult` (community tree parents included)
//! across kernels and thread counts, plus the same invariance for the
//! streaming wave sweep.

use kclique::cliques::Kernel;
use kclique::cpm;
use kclique::exec::Threads;
use kclique::stream::{self, GraphSource};
use kclique::topology::{generate, ModelConfig};

fn internet_graph(seed: u64) -> kclique::graph::Graph {
    generate(&ModelConfig::tiny(seed))
        .expect("preset config is valid")
        .graph
}

fn assert_same_result(a: &cpm::CpmResult, b: &cpm::CpmResult, what: &str) {
    assert_eq!(a.cliques, b.cliques, "{what}: cliques differ");
    assert_eq!(a.levels, b.levels, "{what}: levels differ");
}

#[test]
fn parallel_matches_sequential_on_internet_model() {
    for seed in [7, 23] {
        let g = internet_graph(seed);
        let seq = cpm::percolate(&g);
        let par = cpm::parallel::percolate_parallel(&g, Threads::Auto);
        assert_same_result(&seq, &par, &format!("seed {seed}"));
        assert!(
            seq.k_max().unwrap_or(0) >= 3,
            "seed {seed}: fixture too sparse to exercise the strata"
        );
    }
}

#[test]
fn pooled_sweep_is_thread_count_invariant() {
    // The concurrent union–find races freely inside each stratum; the
    // result must not depend on how many workers raced, and must equal
    // the sequential sweep bit for bit.
    let g = internet_graph(3);
    let reference = cpm::percolate(&g);
    for kernel in [Kernel::Auto, Kernel::Bitset, Kernel::Merge] {
        for threads in [1, 2, 4, 7] {
            let par = cpm::parallel::percolate_parallel_with_kernel(&g, threads, kernel);
            assert_same_result(
                &reference,
                &par,
                &format!("threads {threads}, kernel {kernel}"),
            );
        }
    }
}

#[test]
fn strata_match_flat_edges_on_internet_model() {
    let g = internet_graph(11);
    let cliques = {
        let mut c = kclique::cliques::max_cliques(&g);
        c.canonicalize();
        c
    };
    let index = cpm::build_vertex_index(&cliques, g.node_count());
    let flat = cpm::overlap_edges(&cliques, &index);
    for threads in [1, 4] {
        let strata = cpm::parallel::overlap_strata_parallel(&cliques, &index, threads);
        assert_eq!(strata.edge_count(), flat.len(), "threads {threads}");
        for o in 1..strata.max_size() {
            let expect: Vec<(u32, u32)> = flat
                .iter()
                .filter(|e| e.overlap as usize == o)
                .map(|e| (e.a, e.b))
                .collect();
            assert_eq!(
                strata.stratum(o),
                expect.as_slice(),
                "threads {threads}, stratum {o}"
            );
        }
    }
}

#[test]
fn streaming_waves_are_thread_count_invariant() {
    let g = internet_graph(5);
    let seq = stream::stream_percolate_parallel(&mut GraphSource::new(&g), 1)
        .expect("in-memory replay cannot fail");
    for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
        let par = stream::stream_percolate_parallel(&mut GraphSource::new(&g), threads)
            .expect("in-memory replay cannot fail");
        assert_eq!(seq.levels, par.levels, "{threads} threads");
    }
    assert!(seq.k_max().unwrap_or(0) >= 3, "fixture too sparse");
}
